"""A tagged metrics registry: counters, gauges, and fixed-bucket histograms.

:mod:`repro.sim.metrics` grew out of the benchmark tables: named counters
plus raw-sample latency recorders.  Raw samples are exact but unbounded; a
production-shaped system wants *fixed-bucket* histograms whose memory cost
is constant regardless of traffic, plus tags so one metric name can carry
many series (``csname.latency{server=fileserver}`` vs ``{server=prefix}``).

This module provides that registry.  The legacy :class:`repro.sim.metrics.
Metrics` API is now a thin shim over it, so every counter the kernel and
Ethernet already increment lands here too and exports uniformly as JSONL
(:mod:`repro.obs.export`).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple


class MetricsError(ValueError):
    """Base class for measurement-domain errors.

    Subclasses ``ValueError`` for backward compatibility with callers that
    guarded the old bare-ValueError behaviour.
    """


class NoSamplesError(MetricsError):
    """A summary was requested over an empty sample set.

    A distinct type so benches can distinguish "no samples yet" (often
    benign: skip the table row) from genuinely bad input.
    """


#: Default histogram boundaries for latencies in seconds: 50 us .. 10 s.
#: Chosen so the paper's interesting range (0.77 ms .. ~8 ms Opens) spans
#: many buckets and a saturated workload still lands inside the table.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    50e-6, 100e-6, 250e-6, 500e-6,
    1e-3, 1.5e-3, 2e-3, 3e-3, 4e-3, 5e-3, 7.5e-3,
    10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
    1.0, 2.5, 5.0, 10.0,
)

#: Default boundaries for byte-sized observations (frames, segments).
DEFAULT_BYTES_BUCKETS: Tuple[float, ...] = (
    32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536,
)

TagKey = Tuple[Tuple[str, str], ...]


def _tag_key(tags: Dict[str, Any]) -> TagKey:
    return tuple(sorted((str(k), str(v)) for k, v in tags.items()))


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    tags: TagKey = ()
    value: int = 0

    def incr(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A value that goes up and down (queue depth, servers running, ...)."""

    name: str
    tags: TagKey = ()
    value: float = 0.0
    _set_once: bool = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self._set_once = True

    def add(self, delta: float = 1.0) -> None:
        self.value += delta
        self._set_once = True


@dataclass
class HistogramSummary:
    """Summary of a histogram: exact moments, bucket-estimated percentiles."""

    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float
    stddev: float


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max moments.

    ``buckets`` are upper bounds; an implicit +Inf bucket catches overflow.
    Percentiles interpolate linearly within the winning bucket (clamped to
    the observed min/max), so memory stays O(buckets) no matter how many
    samples arrive -- the property raw-sample recorders lack.
    """

    def __init__(self, name: str, buckets: Iterable[float] | None = None,
                 tags: TagKey = ()) -> None:
        self.name = name
        self.tags = tags
        bounds = (DEFAULT_LATENCY_BUCKETS if buckets is None
                  else tuple(sorted(buckets)))
        if not bounds:
            raise MetricsError(f"histogram {name!r} needs at least one bucket")
        self.bounds: Tuple[float, ...] = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        if value < 0:
            raise MetricsError(
                f"negative observation for histogram {self.name!r}: {value}")
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.sum_sq += value * value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    # ------------------------------------------------------------- summaries

    def quantile(self, fraction: float) -> float:
        """Bucket-interpolated quantile, clamped to observed min/max."""
        if self.count == 0:
            raise NoSamplesError(f"no observations in histogram {self.name!r}")
        target = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (self.bounds[index] if index < len(self.bounds)
                         else self.maximum)
                if bucket_count == 0:
                    estimate = upper
                else:
                    inside = (target - cumulative) / bucket_count
                    estimate = lower + (upper - lower) * inside
                return max(self.minimum, min(self.maximum, estimate))
            cumulative += bucket_count
        return self.maximum

    def stddev(self) -> float:
        if self.count == 0:
            raise NoSamplesError(f"no observations in histogram {self.name!r}")
        mean = self.total / self.count
        variance = max(0.0, self.sum_sq / self.count - mean * mean)
        return math.sqrt(variance)

    def summary(self) -> HistogramSummary:
        if self.count == 0:
            raise NoSamplesError(f"no observations in histogram {self.name!r}")
        return HistogramSummary(
            count=self.count,
            total=self.total,
            mean=self.total / self.count,
            minimum=self.minimum,
            maximum=self.maximum,
            p50=self.quantile(0.50),
            p95=self.quantile(0.95),
            p99=self.quantile(0.99),
            stddev=self.stddev(),
        )

    def bucket_rows(self) -> list[tuple[float, int]]:
        """(upper-bound, count) pairs including the +Inf bucket."""
        rows = [(bound, count)
                for bound, count in zip(self.bounds, self.counts)]
        rows.append((math.inf, self.counts[-1]))
        return rows


class MetricsRegistry:
    """The shared home of every metric a simulation produces.

    Instruments are created on first use and cached by ``(name, tags)``, so
    hot paths pay one dict lookup.  ``snapshot()`` is the export shape used
    by :func:`repro.obs.export.write_metrics_jsonl`.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, TagKey], Counter] = {}
        self._gauges: Dict[Tuple[str, TagKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, TagKey], Histogram] = {}

    # ----------------------------------------------------------- instruments

    def counter(self, name: str, **tags: Any) -> Counter:
        key = (name, _tag_key(tags))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = Counter(name, key[1])
            self._counters[key] = instrument
        return instrument

    def gauge(self, name: str, **tags: Any) -> Gauge:
        key = (name, _tag_key(tags))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = Gauge(name, key[1])
            self._gauges[key] = instrument
        return instrument

    def histogram(self, name: str, buckets: Iterable[float] | None = None,
                  **tags: Any) -> Histogram:
        key = (name, _tag_key(tags))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = Histogram(name, buckets=buckets, tags=key[1])
            self._histograms[key] = instrument
        return instrument

    # -------------------------------------------------------------- queries

    def counter_value(self, name: str, **tags: Any) -> int:
        instrument = self._counters.get((name, _tag_key(tags)))
        return instrument.value if instrument is not None else 0

    def counter_values(self, untagged_only: bool = True) -> dict[str, int]:
        """Plain name -> value mapping (the legacy ``Metrics.counters`` view)."""
        result: dict[str, int] = {}
        for (name, tags), instrument in self._counters.items():
            if untagged_only and tags:
                continue
            result[name] = result.get(name, 0) + instrument.value
        return result

    def counters(self) -> list[Counter]:
        return list(self._counters.values())

    def gauges(self) -> list[Gauge]:
        return list(self._gauges.values())

    def histograms(self) -> list[Histogram]:
        return list(self._histograms.values())

    # --------------------------------------------------------------- export

    def snapshot(self, prefix: str | None = None) -> dict:
        """A JSON-ready view of every instrument.

        With ``prefix`` set, only instruments whose name starts with it are
        included (the [obs] stat server uses this to serve focused files
        like the name-cache scoreboard without copying the whole registry).
        """
        def wanted(name: str) -> bool:
            return prefix is None or name.startswith(prefix)

        counters = [
            {"name": c.name, "tags": dict(c.tags), "value": c.value}
            for c in self._counters.values() if wanted(c.name)
        ]
        gauges = [
            {"name": g.name, "tags": dict(g.tags), "value": g.value}
            for g in self._gauges.values() if wanted(g.name)
        ]
        histograms = []
        for histogram in self._histograms.values():
            if not wanted(histogram.name):
                continue
            record: dict[str, Any] = {
                "name": histogram.name,
                "tags": dict(histogram.tags),
                "count": histogram.count,
            }
            if histogram.count:
                summary = histogram.summary()
                record.update(
                    sum=summary.total, mean=summary.mean,
                    min=summary.minimum, max=summary.maximum,
                    p50=summary.p50, p95=summary.p95, p99=summary.p99,
                    stddev=summary.stddev,
                )
                record["buckets"] = [
                    {"le": bound if math.isfinite(bound) else "inf",
                     "count": count}
                    for bound, count in histogram.bucket_rows()
                ]
            histograms.append(record)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}
