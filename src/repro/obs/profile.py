"""Attribution profiler for simulated time, messages, and bytes.

Where a span trace answers "what happened to *this* resolution", the
profiler answers the aggregate question the paper's Sec. 6 cost argument
needs: **where does every simulated microsecond go** -- which host, which
process, which CSNH phase (prefix lookup, forward hop, MoveTo/MoveFrom,
retransmission backoff).

Mechanism (hooks in :mod:`repro.sim.engine` and the kernel):

- the engine keeps a *current attribution stack* -- a tuple of frame labels
  such as ``("host:ws1", "proc:prefix", "phase:prefix_lookup")``;
- every scheduled event is stamped with the stack current at schedule time,
  and inherits it while its callback runs, so transitively caused work (a
  reply frame, a retransmission timer) stays attributed to its cause;
- every clock advance is charged to the stack of the event that advanced
  it.  The advances *partition* elapsed time, so the frame totals sum
  exactly to end-to-end simulated time -- the property the E7 acceptance
  check asserts;
- each frame put on the wire bumps the current stack's message/byte counts.

Profiling charges **zero simulated time** (mirroring the ``[obs]`` snapshot
conventions: capture is plain memory writes); with no profiler attached the
kernel takes no profiling branches at all.

Use as a context manager::

    with domain.profile() as prof:
        ...run a workload...
    print(prof.render_flame())          # collapsed stacks, flamegraph-ready
    json.dump(prof.profile(), fh)       # structured per-frame totals

``python -m repro.obs.profile --flame`` profiles a pinned E7-style
forwarding chain and prints collapsed stacks consumable by standard
flamegraph tooling (``flamegraph.pl``, speedscope, inferno).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine

#: Version of the JSON profile document shape.
PROFILE_SCHEMA = 1

#: Stacks with no attribution (events scheduled before the profiler
#: attached, or outside any frame) are charged here.
UNATTRIBUTED = ("(unattributed)",)


@dataclass
class FrameStats:
    """Totals charged to one attribution stack."""

    seconds: float = 0.0
    events: int = 0
    messages: int = 0
    bytes: int = 0


class Profiler:
    """A profiler sink: accumulates per-stack totals while attached.

    Also a context manager: entering attaches to ``engine``, exiting
    detaches, so scoped profiles compose with a long-lived domain profiler
    (the engine supports multiple sinks).  ``root`` filters the *reported*
    stacks to those whose outermost frame matches -- :meth:`Host.profile
    <repro.kernel.host.Host.profile>` uses it to scope a report to one
    machine while accounting stays engine-wide.
    """

    def __init__(self, engine: Optional["Engine"] = None,
                 root: Optional[str] = None) -> None:
        self.engine = engine
        self.root = root
        self.stats: Dict[Tuple[str, ...], FrameStats] = {}
        self.window_start: Optional[float] = None
        self.window_end: Optional[float] = None

    # ------------------------------------------------------------ sink API

    def attached(self, engine: "Engine") -> None:
        self.engine = engine
        self.window_start = engine.now
        self.window_end = None

    def detached(self, engine: "Engine") -> None:
        self.window_end = engine.now

    def account(self, stack: Tuple[str, ...], dt: float) -> None:
        """Charge ``dt`` simulated seconds (one clock advance) to ``stack``."""
        stats = self.stats.get(stack or UNATTRIBUTED)
        if stats is None:
            stats = self.stats[stack or UNATTRIBUTED] = FrameStats()
        stats.seconds += dt
        stats.events += 1

    def count_message(self, stack: Tuple[str, ...], nbytes: int) -> None:
        """Charge one wire message of ``nbytes`` to ``stack``."""
        stats = self.stats.get(stack or UNATTRIBUTED)
        if stats is None:
            stats = self.stats[stack or UNATTRIBUTED] = FrameStats()
        stats.messages += 1
        stats.bytes += nbytes

    # ----------------------------------------------------- context manager

    def __enter__(self) -> "Profiler":
        if self.engine is None:
            raise ValueError("Profiler needs an engine to attach to")
        self.engine.attach_profiler(self)
        return self

    def __exit__(self, *exc_info) -> None:
        assert self.engine is not None
        self.engine.detach_profiler(self)

    # -------------------------------------------------------------- totals

    def _selected(self) -> List[Tuple[Tuple[str, ...], FrameStats]]:
        items = [(stack, stats) for stack, stats in self.stats.items()
                 if self.root is None or (stack and stack[0] == self.root)]
        items.sort(key=lambda item: (-item[1].seconds, item[0]))
        return items

    @property
    def total_seconds(self) -> float:
        """Simulated seconds accounted (sums exactly to elapsed time when
        the profiler covered the whole run and ``root`` is None)."""
        return sum(stats.seconds for __, stats in self._selected())

    @property
    def total_messages(self) -> int:
        return sum(stats.messages for __, stats in self._selected())

    @property
    def total_bytes(self) -> int:
        return sum(stats.bytes for __, stats in self._selected())

    def profile(self) -> dict:
        """The JSON profile document (schema-versioned, JSON-ready)."""
        frames = [
            {
                "stack": list(stack),
                "seconds": stats.seconds,
                "events": stats.events,
                "messages": stats.messages,
                "bytes": stats.bytes,
            }
            for stack, stats in self._selected()
        ]
        end = self.window_end
        if end is None and self.engine is not None:
            end = self.engine.now
        return {
            "schema": PROFILE_SCHEMA,
            "root": self.root,
            "window": {"start": self.window_start, "end": end},
            "total_seconds": self.total_seconds,
            "total_messages": self.total_messages,
            "total_bytes": self.total_bytes,
            "frames": frames,
        }

    # ---------------------------------------------------------- flamegraph

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines: ``frame;frame;frame <microseconds>``.

        The standard folded format every flamegraph tool reads (Brendan
        Gregg's ``flamegraph.pl``, speedscope, inferno).  Values are integer
        simulated microseconds; stacks rounding to zero are dropped.
        """
        lines = []
        for stack, stats in self._selected():
            micros = int(round(stats.seconds * 1e6))
            if micros <= 0:
                continue
            lines.append(f"{';'.join(stack or UNATTRIBUTED)} {micros}")
        return lines

    def render_flame(self) -> str:
        return "\n".join(self.collapsed())


# --------------------------------------------------------------- demo run


def forwarding_profile(hops: int = 4, rounds: int = 10, seed: int = 0):
    """Profile a pinned E7-style forwarding chain.

    Builds the bench_e7 scenario -- a workstation plus ``hops + 1`` file
    servers linked through their home directories -- opens the ``next/``
    chain name ``rounds`` times, and returns ``(profiler, elapsed_seconds,
    mean_open_ms)``.  Used by the CLI, the continuous-bench runner, and the
    golden flamegraph test; deterministic for a given (hops, rounds, seed).
    """
    from repro.core.context import ContextPair, WellKnownContext
    from repro.kernel.domain import Domain
    from repro.kernel.ipc import Now
    from repro.runtime import files
    from repro.runtime.workstation import setup_workstation, standard_prefixes
    from repro.servers import VFileServer, start_server

    domain = Domain(seed=seed)
    workstation = setup_workstation(domain, "mann")
    handles = [start_server(domain.create_host(f"vax{i}"),
                            VFileServer(user="mann"))
               for i in range(hops + 1)]
    standard_prefixes(workstation, handles[0])
    for index in range(hops):
        handles[index].server.store.link_remote(
            handles[index].server.home, b"next",
            ContextPair(handles[index + 1].pid, int(WellKnownContext.HOME)))
    name = "next/" * hops + "leaf.txt"
    box: dict = {}

    def client(session):
        yield from files.write_file(session, name, b"x")
        total = 0.0
        for __ in range(rounds):
            t0 = yield Now()
            stream = yield from session.open(name, "r")
            t1 = yield Now()
            yield from stream.close()
            total += t1 - t0
        box["mean_open_ms"] = total / rounds * 1e3

    workstation.host.spawn(client(workstation.session()), name="client")
    with domain.profile() as prof:
        start = domain.now
        domain.run()
        elapsed = domain.now - start
    domain.check_healthy()
    return prof, elapsed, box["mean_open_ms"]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description="Profile a pinned E7-style forwarding run and emit the "
                    "attribution profile (JSON) or collapsed flamegraph "
                    "stacks (--flame).")
    parser.add_argument("--flame", action="store_true",
                        help="emit collapsed stacks (flamegraph folded "
                             "format) instead of the JSON profile")
    parser.add_argument("--hops", type=int, default=4,
                        help="cross-server links in the chain (default 4)")
    parser.add_argument("--rounds", type=int, default=10,
                        help="opens measured (default 10)")
    parser.add_argument("--seed", type=int, default=0,
                        help="domain rng seed (default 0)")
    parser.add_argument("--out", default=None,
                        help="write to this file instead of stdout")
    args = parser.parse_args(argv)

    prof, elapsed, mean_ms = forwarding_profile(args.hops, args.rounds,
                                                args.seed)
    if args.flame:
        text = prof.render_flame() + "\n"
    else:
        document = prof.profile()
        document["scenario"] = {"experiment": "e7_forwarding",
                                "hops": args.hops, "rounds": args.rounds,
                                "seed": args.seed,
                                "elapsed_seconds": elapsed,
                                "mean_open_ms": mean_ms}
        text = json.dumps(document, indent=2) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        coverage = prof.total_seconds / elapsed if elapsed else 1.0
        print(f"wrote {args.out} ({prof.total_seconds * 1e3:.3f} ms "
              f"attributed, {coverage:.1%} of elapsed)")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
