"""Continuous-benchmark runner: the E1-E14 suite as a trajectory.

``python -m repro.obs.bench`` executes every benchmark module's
``trajectory_metrics(quick)`` entry point -- the deterministic, pinned-seed
subset of each experiment -- and writes one schema-versioned snapshot
``BENCH_<n>.json`` at the repo root (next free index).  Two runs of the same
tree produce byte-identical metric values: every number is *simulated* time
or a deterministic count, never wall clock, so the snapshots form a
trajectory of the implementation across commits that
:mod:`repro.obs.regress` can gate on.

Quick mode (``--quick``, what CI's bench-trajectory job runs) shrinks the
suite two ways that keep snapshots comparable with full runs:

- fewer repetitions *only* where the metric is a steady-state mean and
  therefore round-invariant (E1, E3, E7 latencies);
- skipping secondary metrics entirely (they are simply absent from the
  snapshot; regress compares the intersection).

Round-count-sensitive metrics (E14's percentiles, E12's Zipf hit rate)
keep their pinned parameters in both modes.

Snapshot schema (``schema`` = :data:`BENCH_SCHEMA`)::

    {
      "schema": 1,
      "kind": "bench-trajectory",
      "git_sha": "<hex or null>",
      "seed": 0,
      "quick": false,
      "experiments": {
        "e1": {
          "metrics": {"remote_3mbit_ms": 2.56, ...},
          "wall": {"events": 6200, "seconds": 0.41,
                   "wall_events_per_sec": 15122.0}
        },
        ...
      }
    }

Each ``metrics`` dict is simulated time or deterministic counts only --
identical trees produce byte-identical values there.  ``wall`` is the one
deliberate exception: the ROADMAP-mandated wall-clock throughput dimension
(engine events fired per wall second while the experiment ran), measured
*outside* the deterministic metrics so they stay byte-stable, and gated by
``repro.obs.regress`` with a deliberately loose tolerance (machines
differ; only a collapse should fail the gate).  No timestamps: apart from
``wall``, snapshots of identical trees diff clean.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import re
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Mapping, Optional, Union

from repro.sim.engine import Engine

#: Bump when the snapshot layout changes incompatibly.
BENCH_SCHEMA = 1

#: The default simulation seed (individual experiments pin their own
#: scenario seeds in benchmarks/bench_e*.py; this records the policy).
SUITE_SEED = 0

#: Experiment key -> benchmark module (order is run order).
EXPERIMENTS: tuple[tuple[str, str], ...] = (
    ("e1", "bench_e1_ipc_transaction"),
    ("e2", "bench_e2_moveto_load"),
    ("e3", "bench_e3_sequential_read"),
    ("e4", "bench_e4_open_latency"),
    ("e5", "bench_e5_prefix_footprint"),
    ("e6", "bench_e6_pid_operations"),
    ("e7", "bench_e7_forwarding_hops"),
    ("e8a", "bench_e8a_vs_centralized_latency"),
    ("e8b", "bench_e8b_consistency"),
    ("e8c", "bench_e8c_availability"),
    ("e9", "bench_e9_context_directory"),
    ("e10", "bench_e10_multicast_naming"),
    ("e11", "bench_e11_stream_throughput"),
    ("e12", "bench_e12_cached_open"),
    ("e13", "bench_e13_obs_namespace"),
    ("e14", "bench_e14_lossy_wire"),
    ("e15", "bench_e15_telemetry"),
    ("e16", "bench_e16_engine_throughput"),
    ("e17", "bench_e17_flight_recorder"),
    ("e18", "bench_e18_sharded_names"),
    ("e19", "bench_e19_coherence_audit"),
    ("ablations", "bench_ablations"),
)

_SNAPSHOT_RE = re.compile(r"^BENCH_(\d+)\.json$")


# ------------------------------------------------------- trajectory helpers


def trajectory_point(quick: bool, primary: Mapping[str, float],
                     secondary: Union[Callable[[], Mapping[str, float]],
                                      Mapping[str, float], None] = None,
                     ) -> dict:
    """Assemble one bench module's ``trajectory_metrics`` return value.

    The suite-wide quick-mode contract, in one place instead of copied
    into every ``benchmarks/bench_*.py``:

    - ``primary`` metrics are measured in both modes (pinned seeds and
      round counts belong in the code that computed them, so quick and
      full snapshots stay value-comparable);
    - ``secondary`` metrics are skipped entirely in quick mode -- pass a
      zero-argument callable so their measurement cost is skipped too
      (regress compares the intersection, so their absence is legitimate).
    """
    metrics = dict(primary)
    if not quick and secondary is not None:
        metrics.update(secondary() if callable(secondary) else secondary)
    return metrics


def pick_rounds(quick: bool, full: int, reduced: int) -> int:
    """Repetition count for a steady-state mean: ``reduced`` in quick mode.

    Only for round-invariant metrics (E1/E3/E7 latencies).  Metrics whose
    value depends on the round count (E14 percentiles, E12's Zipf hit
    rate) must pin one count for both modes instead.
    """
    return reduced if quick else full


def repo_root(start: Optional[Path] = None) -> Path:
    """The enclosing directory that holds benchmarks/ (default: cwd)."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "benchmarks").is_dir():
            return candidate
    raise FileNotFoundError(
        f"no benchmarks/ directory at or above {here}")


def load_bench_module(name: str, benchmarks_dir: Path):
    """Import one benchmark module from the benchmarks/ directory.

    The modules import ``conftest``/``_common`` as top-level names, so the
    directory goes onto sys.path for the duration of the import.
    """
    path = benchmarks_dir / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.path.insert(0, str(benchmarks_dir))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(str(benchmarks_dir))
    return module


def git_sha(root: Path) -> Optional[str]:
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], cwd=root,
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def run_suite(quick: bool = False,
              only: Optional[list[str]] = None,
              root: Optional[Path] = None,
              verbose: bool = False) -> dict:
    """Run the suite and return the snapshot document (not yet written)."""
    root = repo_root(root)
    benchmarks_dir = root / "benchmarks"
    # Tracing mode would attach Observability bundles to every system the
    # benches build; payload sizes (and so [obs] read latencies) differ.
    # The trajectory is always measured untraced.
    os.environ.pop("REPRO_TRACE_DIR", None)
    # One suite is one measurement window (see Engine.total_events docs).
    Engine.reset_total_events()
    experiments: dict[str, dict] = {}
    for key, module_name in EXPERIMENTS:
        if only and key not in only:
            continue
        if verbose:
            print(f"  {key}: {module_name} ...", file=sys.stderr, flush=True)
        module = load_bench_module(module_name, benchmarks_dir)
        events_before = Engine.total_events
        wall_start = time.perf_counter()
        metrics = module.trajectory_metrics(quick=quick)
        wall_seconds = time.perf_counter() - wall_start
        events = Engine.total_events - events_before
        if not metrics:
            continue
        # The one non-deterministic section (see module docstring):
        # engine events fired per wall-clock second over the whole
        # trajectory_metrics call, including every domain it built.
        wall = {
            "events": events,
            "seconds": round(wall_seconds, 6),
            "wall_events_per_sec": round(events / wall_seconds, 1)
            if wall_seconds > 0 else 0.0,
        }
        # Modules with a dedicated wall-clock sweep (E16's fleet-size
        # ladder) publish extra rate keys through ``wall_metrics``; they
        # land in the wall section so regress gates them with the same
        # loose higher-is-better tolerance, never as deterministic metrics.
        wall_extra = getattr(module, "wall_metrics", None)
        if wall_extra is not None:
            wall.update(wall_extra(quick=quick))
        experiments[key] = {"metrics": metrics, "wall": wall}
    return {
        "schema": BENCH_SCHEMA,
        "kind": "bench-trajectory",
        "git_sha": git_sha(root),
        "seed": SUITE_SEED,
        "quick": quick,
        "experiments": experiments,
    }


def snapshot_paths(root: Path) -> list[tuple[int, Path]]:
    """All BENCH_<n>.json files at ``root``, sorted by index."""
    found = []
    for entry in root.iterdir():
        match = _SNAPSHOT_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return sorted(found)


def next_snapshot_path(root: Path) -> Path:
    taken = [index for index, __ in snapshot_paths(root)]
    return root / f"BENCH_{max(taken) + 1 if taken else 0}.json"


def write_snapshot(snapshot: dict, path: Path) -> Path:
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Run the E1-E14 trajectory suite and write BENCH_<n>.json")
    parser.add_argument("--quick", action="store_true",
                        help="reduced suite (CI mode); values stay "
                             "comparable with full runs")
    parser.add_argument("--only", action="append", metavar="EXP",
                        help="run only this experiment key (repeatable), "
                             "e.g. --only e7")
    parser.add_argument("--out", metavar="PATH",
                        help="snapshot path (default: next free "
                             "BENCH_<n>.json at the repo root)")
    parser.add_argument("--list", action="store_true",
                        help="list experiment keys and exit")
    args = parser.parse_args(argv)

    if args.list:
        for key, module_name in EXPERIMENTS:
            print(f"{key:10s} {module_name}")
        return 0

    root = repo_root()
    snapshot = run_suite(quick=args.quick, only=args.only, verbose=True)
    out = Path(args.out) if args.out else next_snapshot_path(root)
    write_snapshot(snapshot, out)
    count = sum(len(exp["metrics"])
                for exp in snapshot["experiments"].values())
    walls = [exp["wall"]["wall_events_per_sec"]
             for exp in snapshot["experiments"].values() if "wall" in exp]
    rate = f", {min(walls):,.0f}-{max(walls):,.0f} events/s" if walls else ""
    print(f"wrote {out} ({len(snapshot['experiments'])} experiments, "
          f"{count} metrics, quick={snapshot['quick']}{rate})")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
