"""Live monitoring CLI: SLO alerts and time series through ``[obs]``.

``python -m repro.obs.monitor`` runs a seeded, traced chaos-style scenario
(a workstation client reading through its prefix server and name cache
while the wire loses frames and the file server crashes mid-run) with the
telemetry collector and the default SLO watchdogs armed, and:

- **tails alerts live** -- every fire/resolve the watchdog engine emits is
  printed the moment it happens on the simulated timeline;
- **reads everything back through the protocol** -- after quiescence an
  in-simulation reader pulls every host's ``timeseries/<metric>`` ring
  buffer and the fleet alert log over the standard Sec. 5.4 forwarding
  chain (``[obs]/hosts/<host>/timeseries/<metric>``,
  ``[obs]/fleet/alerts``), so every number shown travelled the wire;
- **renders** per-host summary tables with unicode sparklines, the alert
  history, and a delivery check (protocol read vs engine emission).

``--json`` replaces the rendering with one deterministic document (same
seed -> byte-identical modulo nothing: every value is simulated), which is
what CI's monitor smoke consumes.  Exit status is nonzero when the alert
log read through ``[obs]`` disagrees with what the engine emitted.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Optional

from repro.obs.telemetry import SERIES_METRICS, AlertEvent

#: Eight-level bar for time-series trends; one char per bucketed sample.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

MONITOR_SCHEMA = 1

_PAYLOAD = b"monitor-payload"


def sparkline(values: list[float], width: int = 40) -> str:
    """Render ``values`` as a fixed-width unicode bar trend (min..max)."""
    if not values:
        return ""
    if len(values) > width:
        # Bucket to width by averaging, keeping the overall shape.
        step = len(values) / width
        values = [sum(values[int(i * step):int((i + 1) * step) or 1])
                  / max(1, len(values[int(i * step):int((i + 1) * step)]))
                  for i in range(width)]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_CHARS[0] * len(values)
    top = len(SPARK_CHARS) - 1
    return "".join(SPARK_CHARS[round((v - lo) / (hi - lo) * top)]
                   for v in values)


def _parse_jsonl(payload: bytes) -> list[dict]:
    return [json.loads(line)
            for line in payload.splitlines() if line.strip()]


def _series_summary(records: list[dict]) -> dict:
    values = [record["value"] for record in records
              if record.get("kind") == "sample"]
    # Sampling gaps (host down between ticks) come back on the series
    # itself; keep them explicit so a reader of the document never has to
    # infer "crashed" from a silent stretch of ring buffer.
    gaps = [{"start": record["start"], "end": record["end"]}
            for record in records if record.get("kind") == "gap"]
    if not values:
        return {"samples": 0, "gaps": gaps}
    return {
        "samples": len(values),
        "min": min(values),
        "mean": round(sum(values) / len(values), 4),
        "max": max(values),
        "last": values[-1],
        "values": values,
        "gaps": gaps,
    }


def run_monitored(seed: int = 7, duration: float = 5.0, drop: float = 0.10,
                  interval: float = 0.1,
                  on_alert: Optional[Callable[[AlertEvent], None]] = None,
                  ) -> dict:
    """One traced, watchdogged scenario; the monitor document.

    The scenario mirrors :func:`repro.faults.chaos.run_chaos` (lossy wire
    for the middle 80%, file-server crash/respawn at 40-50%) but carries a
    full :class:`~repro.obs.Observability` bundle so the run is traced,
    and every number in the returned document was read back through the
    ``[obs]`` name space, not scraped from Python objects.
    """
    from repro.core.resolver import NameError_
    from repro.faults.chaos import ChaosSchedule
    from repro.kernel.domain import Domain
    from repro.net.latency import WireFaultModel
    from repro.obs import Observability
    from repro.runtime import files
    from repro.runtime.workstation import setup_workstation, standard_prefixes
    from repro.servers.base import start_server
    from repro.servers.fileserver.server import VFileServer
    from repro.servers.statserver import enable_obs_namespace
    from repro.vio.client import IoError

    def populated_server() -> VFileServer:
        server = VFileServer(user="mann")
        node = server.store.make_path("data/f0.dat", directory=False)
        node.data[:] = _PAYLOAD
        return server

    domain = Domain(seed=seed, obs=Observability())
    workstation = setup_workstation(domain, "mann")
    fs_host = domain.create_host("vax1")
    handle = start_server(fs_host, populated_server())
    standard_prefixes(workstation, handle)
    workstation.enable_name_cache()
    enable_obs_namespace(domain, workstation.host)
    telemetry = domain.enable_telemetry(interval=interval)
    if on_alert is not None:
        telemetry.alerts.subscribe(on_alert)

    schedule = ChaosSchedule(domain)
    schedule.loss_between(0.1 * duration, 0.9 * duration,
                          WireFaultModel(drop_rate=drop, dup_rate=0.02,
                                         delay_rate=0.05))

    def respawn(host):
        new_handle = start_server(host, populated_server())
        standard_prefixes(workstation, new_handle)

    schedule.crash_between(fs_host, 0.4 * duration, 0.5 * duration,
                           respawn=respawn)

    reads = {"ok": 0, "failed": 0}

    def client(session):
        from repro.kernel.ipc import Delay, Now

        while True:
            now = yield Now()
            if now >= duration:
                break
            for name in ("[root]data/f0.dat", "[storage]data/f0.dat"):
                try:
                    yield from files.read_file(session, name)
                except (NameError_, IoError):
                    reads["failed"] += 1
                else:
                    reads["ok"] += 1
            yield Delay(0.02)

    workstation.host.spawn(client(workstation.session()),
                           name="monitor-client")
    domain.run()
    domain.check_healthy()

    # Everything below is read back through [obs] -- full protocol path.
    host_names = sorted(host.name for host in domain.hosts.values()
                        if not host.crashed)
    payloads: dict[tuple[str, str], bytes] = {}

    def reader(session):
        for host_name in host_names:
            for metric in SERIES_METRICS:
                name = f"[obs]/hosts/{host_name}/timeseries/{metric}"
                payloads[(host_name, metric)] = (
                    yield from files.read_file(session, name))
        payloads[("fleet", "alerts")] = yield from files.read_file(
            session, "[obs]/fleet/alerts")

    workstation.host.spawn(reader(workstation.session()),
                           name="monitor-reader")
    domain.run()

    hosts: dict[str, dict] = {}
    for host_name in host_names:
        hosts[host_name] = {
            metric: _series_summary(
                _parse_jsonl(payloads[(host_name, metric)]))
            for metric in SERIES_METRICS
        }
    alert_records = [record
                     for record in _parse_jsonl(payloads[("fleet", "alerts")])
                     if record.get("kind") == "alert"]
    emitted = telemetry.alerts.to_records()
    return {
        "kind": "obs-monitor",
        "schema": MONITOR_SCHEMA,
        "scenario": {"seed": seed, "duration": duration, "drop": drop,
                     "interval": interval},
        "reads": dict(reads),
        "hosts": hosts,
        "alerts": {
            "fired": telemetry.alerts.fired,
            "resolved": telemetry.alerts.resolved,
            "active": sorted(f"{rule}@{host}"
                             for rule, host in telemetry.alerts.active),
            "events": alert_records,
        },
        "delivery": {"emitted": len(emitted),
                     "read_through_obs": len(alert_records),
                     "match": alert_records == emitted},
    }


# ------------------------------------------------------------- rendering


def _strip_values(document: dict) -> dict:
    """Drop the raw sample arrays for the JSON document (summaries stay)."""
    for metrics in document["hosts"].values():
        for summary in metrics.values():
            summary.pop("values", None)
    return document


def render(document: dict, out=None) -> None:
    out = out if out is not None else sys.stdout
    scenario = document["scenario"]
    print(f"scenario: seed={scenario['seed']} "
          f"duration={scenario['duration']}s drop={scenario['drop']} "
          f"sample interval={scenario['interval']}s", file=out)
    reads = document["reads"]
    print(f"client reads: {reads['ok']} ok, {reads['failed']} failed",
          file=out)
    for host_name, metrics in document["hosts"].items():
        print(f"\n[obs]/hosts/{host_name}/timeseries/*", file=out)
        print(f"  {'metric':<12} {'n':>4} {'min':>9} {'mean':>9} "
              f"{'max':>9} {'last':>9}  trend", file=out)
        for metric, summary in metrics.items():
            if not summary["samples"]:
                print(f"  {metric:<12} {0:>4}", file=out)
                continue
            print(f"  {metric:<12} {summary['samples']:>4} "
                  f"{summary['min']:>9.3g} {summary['mean']:>9.3g} "
                  f"{summary['max']:>9.3g} {summary['last']:>9.3g}  "
                  f"{sparkline(summary.get('values', []))}", file=out)
        # Gaps are per host (sampling stops wholesale while it is down), so
        # one line under the table covers every metric above it.
        for gap in next(iter(metrics.values()), {}).get("gaps", []):
            end = (f"{gap['end']:.3f}s" if gap["end"] is not None
                   else "end of run")
            print(f"  sampling gap: {gap['start']:.3f}s -> {end} "
                  f"(host down)", file=out)
    alerts = document["alerts"]
    print(f"\nalerts ([obs]/fleet/alerts): {alerts['fired']} fired, "
          f"{alerts['resolved']} resolved, "
          f"{len(alerts['active'])} active", file=out)
    for record in alerts["events"]:
        print(f"  [t={record['t']:8.3f}] {record['event']:<7} "
              f"{record['severity']:<8} {record['rule']} "
              f"host={record['host']} {record['metric']}={record['value']:g}",
              file=out)
    delivery = document["delivery"]
    verdict = "match" if delivery["match"] else "MISMATCH"
    print(f"delivery: {delivery['read_through_obs']} read through [obs] "
          f"vs {delivery['emitted']} emitted -- {verdict}", file=out)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.monitor",
        description="Run a traced chaos scenario with SLO watchdogs and "
                    "monitor it through the [obs] name space.")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration", type=float, default=5.0,
                        help="simulated seconds (default 5)")
    parser.add_argument("--drop", type=float, default=0.10,
                        help="frame drop rate during the loss phase")
    parser.add_argument("--interval", type=float, default=0.1,
                        help="telemetry sample interval (simulated s)")
    parser.add_argument("--json", action="store_true",
                        help="emit the monitor document instead of tables "
                             "(no live tail)")
    args = parser.parse_args(argv)

    def tail(event: AlertEvent) -> None:
        print(event.describe(), flush=True)

    document = run_monitored(seed=args.seed, duration=args.duration,
                             drop=args.drop, interval=args.interval,
                             on_alert=None if args.json else tail)
    if args.json:
        print(json.dumps(_strip_values(document), indent=2, sort_keys=True))
    else:
        print()
        render(document)
    return 0 if document["delivery"]["match"] else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
