"""Live monitoring CLI: SLO alerts and time series through ``[obs]``.

``python -m repro.obs.monitor`` runs a seeded, traced chaos-style scenario
(a workstation client reading through its prefix server and name cache
while the wire loses frames and the file server crashes mid-run) with the
telemetry collector and the default SLO watchdogs armed, and:

- **tails alerts live** -- every fire/resolve the watchdog engine emits is
  printed the moment it happens on the simulated timeline;
- **reads everything back through the protocol** -- after quiescence an
  in-simulation reader pulls every host's ``timeseries/<metric>`` ring
  buffer and the fleet alert log over the standard Sec. 5.4 forwarding
  chain (``[obs]/hosts/<host>/timeseries/<metric>``,
  ``[obs]/fleet/alerts``), so every number shown travelled the wire;
- **renders** per-host summary tables with unicode sparklines, the alert
  history, and a delivery check (protocol read vs engine emission).

``--json`` replaces the rendering with one deterministic document (same
seed -> byte-identical modulo nothing: every value is simulated), which is
what CI's monitor smoke consumes.  Exit status is nonzero when the alert
log read through ``[obs]`` disagrees with what the engine emitted.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Optional

from repro.obs.telemetry import SERIES_METRICS, AlertEvent

#: Eight-level bar for time-series trends; one char per bucketed sample.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

MONITOR_SCHEMA = 1

_PAYLOAD = b"monitor-payload"


def sparkline(values: list[float], width: int = 40) -> str:
    """Render ``values`` as a fixed-width unicode bar trend (min..max)."""
    if not values:
        return ""
    if len(values) > width:
        # Bucket to width by averaging, keeping the overall shape.
        step = len(values) / width
        values = [sum(values[int(i * step):int((i + 1) * step) or 1])
                  / max(1, len(values[int(i * step):int((i + 1) * step)]))
                  for i in range(width)]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_CHARS[0] * len(values)
    top = len(SPARK_CHARS) - 1
    return "".join(SPARK_CHARS[round((v - lo) / (hi - lo) * top)]
                   for v in values)


def _parse_jsonl(payload: bytes) -> list[dict]:
    return [json.loads(line)
            for line in payload.splitlines() if line.strip()]


def _series_summary(records: list[dict]) -> dict:
    values = [record["value"] for record in records
              if record.get("kind") == "sample"]
    # Sampling gaps (host down between ticks) come back on the series
    # itself; keep them explicit so a reader of the document never has to
    # infer "crashed" from a silent stretch of ring buffer.
    gaps = [{"start": record["start"], "end": record["end"]}
            for record in records if record.get("kind") == "gap"]
    if not values:
        return {"samples": 0, "gaps": gaps}
    return {
        "samples": len(values),
        "min": min(values),
        "mean": round(sum(values) / len(values), 4),
        "max": max(values),
        "last": values[-1],
        "values": values,
        "gaps": gaps,
    }


def _live_map_versions(domain) -> dict:
    """Each live host's current ShardMap version (replica over resolver).

    Pure memory reads off the per-host coherence documents -- the same
    source the ``[obs]/hosts/<host>/coherence`` leaf serves -- so the live
    alert tail can stamp fire/resolve lines with the fleet's map state at
    that simulated instant.  Hosts with no shard state are omitted.
    """
    from repro.obs.audit import host_coherence_document

    versions: dict[str, int] = {}
    for host in sorted(domain.hosts.values(), key=lambda h: h.host_id):
        if host.crashed:
            continue
        document = host_coherence_document(host)
        replica = document.get("replica")
        resolver = document.get("resolver")
        version = (replica or resolver or {}).get("map_version")
        if version is not None:
            versions[host.name] = version
    return versions


def run_monitored(seed: int = 7, duration: float = 5.0, drop: float = 0.10,
                  interval: float = 0.1, shards: int = 0,
                  on_alert: Optional[Callable[[AlertEvent], None]] = None,
                  live_state: Optional[dict] = None,
                  ) -> dict:
    """One traced, watchdogged scenario; the monitor document.

    The scenario mirrors :func:`repro.faults.chaos.run_chaos` (lossy wire
    for the middle 80%, file-server crash/respawn at 40-50%) but carries a
    full :class:`~repro.obs.Observability` bundle so the run is traced,
    and every number in the returned document was read back through the
    ``[obs]`` name space, not scraped from Python objects.

    ``shards`` > 0 additionally deploys a :class:`~repro.core.shard.
    ShardCluster` of that many replicas (prefixes ``[s0]``..``[s7]``) with
    a resolver on the workstation, and the client interleaves sharded
    reads -- so the coherence series and the ``shard_maps`` section carry
    live values instead of ``None`` stubs.

    ``live_state``, when given, is refreshed with the fleet's current
    ShardMap versions (``live_state["shard_maps"]``) immediately before
    each ``on_alert`` callback -- the alert tail reads it to suffix every
    fire/resolve line without widening the single-argument callback
    contract.
    """
    from repro.core.resolver import NameError_
    from repro.faults.chaos import ChaosSchedule
    from repro.kernel.domain import Domain
    from repro.net.latency import WireFaultModel
    from repro.obs import Observability
    from repro.runtime import files
    from repro.runtime.workstation import setup_workstation, standard_prefixes
    from repro.servers.base import start_server
    from repro.servers.fileserver.server import VFileServer
    from repro.servers.statserver import enable_obs_namespace
    from repro.vio.client import IoError

    def populated_server() -> VFileServer:
        server = VFileServer(user="mann")
        node = server.store.make_path("data/f0.dat", directory=False)
        node.data[:] = _PAYLOAD
        return server

    domain = Domain(seed=seed, obs=Observability())
    workstation = setup_workstation(domain, "mann")
    fs_host = domain.create_host("vax1")
    handle = start_server(fs_host, populated_server())
    standard_prefixes(workstation, handle)
    workstation.enable_name_cache()
    enable_obs_namespace(domain, workstation.host)

    shard_session = None
    shard_prefixes = 0
    if shards > 0:
        from repro.core.context import ContextPair, WellKnownContext
        from repro.core.shard import ShardCluster
        from repro.obs.audit import enable_coherence
        from repro.runtime.session import Session

        enable_coherence(domain)
        pair = ContextPair(handle.pid, int(WellKnownContext.DEFAULT))
        shard_hosts = domain.create_hosts(shards, prefix="ns")
        cluster = ShardCluster(domain, shard_hosts, lease_ttl=1.0)
        shard_prefixes = 8
        for index in range(shard_prefixes):
            cluster.seed_binding(f"s{index}", pair)
        # host= registers the resolver for the coherence leaf and the
        # audit walk; the registration itself is pure bookkeeping.
        resolver = cluster.resolver(host=workstation.host)
        shard_session = Session(current=pair,
                                prefix_server=cluster.primary_pid(),
                                latency=domain.latency, cache=resolver)

    telemetry = domain.enable_telemetry(interval=interval)
    if on_alert is not None:
        def fire(event: AlertEvent, _notify=on_alert) -> None:
            if live_state is not None:
                live_state["shard_maps"] = _live_map_versions(domain)
            _notify(event)

        telemetry.alerts.subscribe(fire)

    schedule = ChaosSchedule(domain)
    schedule.loss_between(0.1 * duration, 0.9 * duration,
                          WireFaultModel(drop_rate=drop, dup_rate=0.02,
                                         delay_rate=0.05))

    def respawn(host):
        new_handle = start_server(host, populated_server())
        standard_prefixes(workstation, new_handle)

    schedule.crash_between(fs_host, 0.4 * duration, 0.5 * duration,
                           respawn=respawn)

    reads = {"ok": 0, "failed": 0}

    def client(session):
        from repro.kernel.ipc import Delay, Now

        tick = 0
        while True:
            now = yield Now()
            if now >= duration:
                break
            names = [(session, "[root]data/f0.dat"),
                     (session, "[storage]data/f0.dat")]
            if shard_session is not None:
                # Round-robin (not rng) keeps the draw streams untouched.
                names.append((shard_session,
                              f"[s{tick % shard_prefixes}]data/f0.dat"))
                tick += 1
            for target, name in names:
                try:
                    yield from files.read_file(target, name)
                except (NameError_, IoError):
                    reads["failed"] += 1
                else:
                    reads["ok"] += 1
            yield Delay(0.02)

    workstation.host.spawn(client(workstation.session()),
                           name="monitor-client")
    domain.run()
    domain.check_healthy()

    # Everything below is read back through [obs] -- full protocol path.
    host_names = sorted(host.name for host in domain.hosts.values()
                        if not host.crashed)
    payloads: dict[tuple[str, str], bytes] = {}

    def reader(session):
        for host_name in host_names:
            for metric in SERIES_METRICS:
                name = f"[obs]/hosts/{host_name}/timeseries/{metric}"
                payloads[(host_name, metric)] = (
                    yield from files.read_file(session, name))
            payloads[(host_name, "coherence")] = yield from files.read_file(
                session, f"[obs]/hosts/{host_name}/coherence")
        payloads[("fleet", "alerts")] = yield from files.read_file(
            session, "[obs]/fleet/alerts")

    workstation.host.spawn(reader(workstation.session()),
                           name="monitor-reader")
    domain.run()

    hosts: dict[str, dict] = {}
    shard_maps: dict[str, int] = {}
    for host_name in host_names:
        hosts[host_name] = {
            metric: _series_summary(
                _parse_jsonl(payloads[(host_name, metric)]))
            for metric in SERIES_METRICS
        }
        # The host's current ShardMap version, off the coherence leaf it
        # just served over the wire (replica state wins over resolver;
        # hosts holding no shard state are omitted).
        coherence = json.loads(payloads[(host_name, "coherence")])
        replica = coherence.get("replica")
        resolver = coherence.get("resolver")
        version = (replica or resolver or {}).get("map_version")
        if version is not None:
            shard_maps[host_name] = version
    alert_records = [record
                     for record in _parse_jsonl(payloads[("fleet", "alerts")])
                     if record.get("kind") == "alert"]
    emitted = telemetry.alerts.to_records()
    return {
        "kind": "obs-monitor",
        "schema": MONITOR_SCHEMA,
        "scenario": {"seed": seed, "duration": duration, "drop": drop,
                     "interval": interval, "shards": shards},
        "reads": dict(reads),
        "hosts": hosts,
        "shard_maps": shard_maps,
        "alerts": {
            "fired": telemetry.alerts.fired,
            "resolved": telemetry.alerts.resolved,
            "active": sorted(f"{rule}@{host}"
                             for rule, host in telemetry.alerts.active),
            "events": alert_records,
        },
        "delivery": {"emitted": len(emitted),
                     "read_through_obs": len(alert_records),
                     "match": alert_records == emitted},
    }


# ------------------------------------------------------------- rendering


def _strip_values(document: dict) -> dict:
    """Drop the raw sample arrays for the JSON document (summaries stay)."""
    for metrics in document["hosts"].values():
        for summary in metrics.values():
            summary.pop("values", None)
    return document


def render(document: dict, out=None) -> None:
    out = out if out is not None else sys.stdout
    scenario = document["scenario"]
    print(f"scenario: seed={scenario['seed']} "
          f"duration={scenario['duration']}s drop={scenario['drop']} "
          f"sample interval={scenario['interval']}s", file=out)
    reads = document["reads"]
    print(f"client reads: {reads['ok']} ok, {reads['failed']} failed",
          file=out)
    versions = {host: version
                for host, version in document.get("shard_maps", {}).items()
                if version is not None}
    if versions:
        print("shard maps: " + " ".join(f"{host}=v{version}" for host, version
                                        in sorted(versions.items())),
              file=out)
    for host_name, metrics in document["hosts"].items():
        print(f"\n[obs]/hosts/{host_name}/timeseries/*", file=out)
        print(f"  {'metric':<12} {'n':>4} {'min':>9} {'mean':>9} "
              f"{'max':>9} {'last':>9}  trend", file=out)
        for metric, summary in metrics.items():
            if not summary["samples"]:
                print(f"  {metric:<12} {0:>4}", file=out)
                continue
            print(f"  {metric:<12} {summary['samples']:>4} "
                  f"{summary['min']:>9.3g} {summary['mean']:>9.3g} "
                  f"{summary['max']:>9.3g} {summary['last']:>9.3g}  "
                  f"{sparkline(summary.get('values', []))}", file=out)
        # Gaps are per host (sampling stops wholesale while it is down), so
        # one line under the table covers every metric above it.
        for gap in next(iter(metrics.values()), {}).get("gaps", []):
            end = (f"{gap['end']:.3f}s" if gap["end"] is not None
                   else "end of run")
            print(f"  sampling gap: {gap['start']:.3f}s -> {end} "
                  f"(host down)", file=out)
    alerts = document["alerts"]
    print(f"\nalerts ([obs]/fleet/alerts): {alerts['fired']} fired, "
          f"{alerts['resolved']} resolved, "
          f"{len(alerts['active'])} active", file=out)
    for record in alerts["events"]:
        print(f"  [t={record['t']:8.3f}] {record['event']:<7} "
              f"{record['severity']:<8} {record['rule']} "
              f"host={record['host']} {record['metric']}={record['value']:g}",
              file=out)
    delivery = document["delivery"]
    verdict = "match" if delivery["match"] else "MISMATCH"
    print(f"delivery: {delivery['read_through_obs']} read through [obs] "
          f"vs {delivery['emitted']} emitted -- {verdict}", file=out)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.monitor",
        description="Run a traced chaos scenario with SLO watchdogs and "
                    "monitor it through the [obs] name space.")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration", type=float, default=5.0,
                        help="simulated seconds (default 5)")
    parser.add_argument("--drop", type=float, default=0.10,
                        help="frame drop rate during the loss phase")
    parser.add_argument("--interval", type=float, default=0.1,
                        help="telemetry sample interval (simulated s)")
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="also deploy an N-replica shard cluster and "
                             "interleave sharded reads (default: none)")
    parser.add_argument("--json", action="store_true",
                        help="emit the monitor document instead of tables "
                             "(no live tail)")
    args = parser.parse_args(argv)

    live_state: dict = {}

    def tail(event: AlertEvent) -> None:
        versions = {host: version for host, version
                    in live_state.get("shard_maps", {}).items()
                    if version is not None}
        suffix = ""
        if versions:
            suffix = "  shard-maps " + " ".join(
                f"{host}=v{version}"
                for host, version in sorted(versions.items()))
        print(event.describe() + suffix, flush=True)

    document = run_monitored(seed=args.seed, duration=args.duration,
                             drop=args.drop, interval=args.interval,
                             shards=args.shards,
                             on_alert=None if args.json else tail,
                             live_state=live_state)
    if args.json:
        print(json.dumps(_strip_values(document), indent=2, sort_keys=True))
    else:
        print()
        render(document)
    return 0 if document["delivery"]["match"] else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
