"""Live introspection payloads for the ``[obs]`` name space.

The stat server (:mod:`repro.servers.statserver`) exposes observability
state as readable file-like objects.  This module builds the *payloads*:
each function takes live kernel/observability objects and returns the bytes
a client reads back through the V I/O protocol.

Two formats, both line-oriented and grep-friendly:

- ``json`` -- one pretty-printed JSON document (per-host snapshots);
- ``jsonl`` -- one JSON record per line, in exactly the record shapes of
  :mod:`repro.obs.export`, so ``repro.obs.report --live`` reuses the same
  renderers on live reads as on exported files.

Building a payload is plain memory reads -- **zero simulated cost**.  The
simulated price of introspection is paid where it belongs: in the messages
that carry the request to the stat server and the payload blocks back
(`reads are real traffic`).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional

from repro.obs.export import span_record

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.domain import Domain
    from repro.kernel.host import Host
    from repro.obs.registry import MetricsRegistry

#: Default cap on the spans served by ``spans/recent`` -- the newest N
#: finished spans, so the payload stays bounded on long runs.
RECENT_SPANS_LIMIT = 200


def _json_bytes(value) -> bytes:
    return (json.dumps(value, indent=2, sort_keys=True) + "\n").encode()


def _jsonl_bytes(records) -> bytes:
    return "".join(json.dumps(record) + "\n" for record in records).encode()


# ---------------------------------------------------------------- per host


def host_metrics_payload(host: "Host") -> bytes:
    """``[obs]/hosts/<host>/metrics``: the kernel's live counters."""
    return _json_bytes(host.snapshot())


def host_services_payload(host: "Host") -> bytes:
    """``[obs]/hosts/<host>/services``: the SetPid/GetPid table."""
    return _json_bytes(host.registry.snapshot())


def host_processes_payload(host: "Host") -> bytes:
    """``[obs]/hosts/<host>/processes``: the kernel process table."""
    return _json_bytes(host.process_snapshot())


def host_namecache_payload(host: "Host") -> bytes:
    """``[obs]/hosts/<host>/namecache``: binding-cache contents + counters.

    A host without a client name cache (servers-only machines) serves an
    explicit ``enabled: false`` stub rather than an error -- the *name*
    exists on every host, uniformly.
    """
    cache = host.domain.name_caches.get(host.host_id)
    if cache is None:
        return _json_bytes({"enabled": False, "host": host.name})
    snap = cache.snapshot()
    snap["enabled"] = True
    snap["host"] = host.name
    return _json_bytes(snap)


def host_coherence_payload(host: "Host") -> bytes:
    """``[obs]/hosts/<host>/coherence``: cached name state with provenance.

    The host's shard-replica table and shard-resolver caches, every entry
    stamped with its ``(epoch, source)`` provenance and lease/TTL state --
    the per-host unit the coherence auditor (:mod:`repro.obs.audit`)
    cross-checks against the authoritative owner.  A host running neither
    a replica nor a registered resolver serves ``enabled: false`` -- the
    *name* exists on every host, uniformly.
    """
    from repro.obs.audit import host_coherence_document

    return _json_bytes(host_coherence_document(host))


def host_profile_payload(host: "Host") -> bytes:
    """``[obs]/hosts/<host>/profile``: live attribution-profiler totals.

    Served from the domain-lifetime profiler (attached by
    ``enable_obs_namespace`` via ``Domain.enable_profiler``), filtered to
    stacks rooted at this host.  A domain without one serves an explicit
    ``enabled: false`` stub -- the *name* exists on every host, uniformly.
    """
    prof = host.domain.profiler
    if prof is None:
        return _json_bytes({"enabled": False, "host": host.name})
    document = prof.profile()
    frames = [frame for frame in document["frames"]
              if frame["stack"] and frame["stack"][0] == "host:" + host.name]
    document["frames"] = frames
    document["root"] = "host:" + host.name
    document["total_seconds"] = sum(f["seconds"] for f in frames)
    document["total_messages"] = sum(f["messages"] for f in frames)
    document["total_bytes"] = sum(f["bytes"] for f in frames)
    document["enabled"] = True
    document["host"] = host.name
    return _json_bytes(document)


def host_spans_payload(host: "Host",
                       limit: int = RECENT_SPANS_LIMIT) -> bytes:
    """``[obs]/hosts/<host>/spans/recent``: newest finished spans.

    Spans are attributed to the host whose kernel opened them (the actor
    label is ``<host>/<process>``).  JSONL in the export record shape.
    """
    obs = host.domain.obs
    if obs is None:
        return b""
    needle = f"{host.name}/"
    picked = [span for span in obs.spans.spans
              if span.end is not None and span.actor.startswith(needle)]
    return _jsonl_bytes(span_record(span) for span in picked[-limit:])


def host_timeseries_payload(host: "Host", metric: str) -> bytes:
    """``[obs]/hosts/<host>/timeseries/<metric>``: one sampled series.

    JSONL: a leading ``meta`` record (host, metric, sampling interval,
    enablement) followed by one ``sample`` record per retained tick.  A
    domain without a telemetry collector serves the meta record with
    ``enabled: false`` -- the *name* exists on every host, uniformly.
    """
    telemetry = host.domain.telemetry
    meta = {"kind": "meta", "host": host.name, "metric": metric,
            "enabled": telemetry is not None}
    if telemetry is None:
        return _jsonl_bytes([meta])
    meta["interval"] = telemetry.interval
    meta["ticks"] = telemetry.ticks
    series = telemetry.series_for(host.name, metric)
    records = series.to_records() if series is not None else []
    # Sampling gaps (host down between ticks) ride on every series, so a
    # reader never has to infer "crashed" from silent stretches of ring.
    gaps = [{"kind": "gap", **gap} for gap in telemetry.gaps_for(host.name)]
    return _jsonl_bytes([meta, *gaps, *records])


def host_flightlog_payload(host: "Host") -> bytes:
    """``[obs]/hosts/<host>/flightlog``: the live flight-record lane.

    JSONL: a leading ``meta`` record (enablement, ring accounting, digest
    window), one ``record`` per retained flight record (its flight kind --
    ``send``, ``request`` ... -- rides as ``event`` so the line
    discriminator stays ``kind``), one ``chain`` entry per sealed digest
    window, and one ``postmortem`` marker per frozen crash dump (the dump
    itself is recovered offline; the marker tells the reader it exists).
    Domains without a recorder serve ``enabled: false`` -- the name exists
    on every host, uniformly.
    """
    flight = host.domain.flight
    meta = {"kind": "meta", "host": host.name,
            "enabled": flight is not None}
    if flight is None:
        return _jsonl_bytes([meta])
    snap = flight.snapshot(host.name)
    meta.update(schema=snap["schema"], records_seen=snap["records_seen"],
                dropped=snap["dropped"], capacity=snap["capacity"],
                window=snap["window"])
    # A flight record's own "kind" field (send/request/...) would clobber
    # the JSONL line discriminator; it rides as "event" instead.
    records = [{**record, "event": record["kind"], "kind": "record"}
               for record in snap["records"]]
    chain = [{"kind": "chain", **entry} for entry in snap["chain"]]
    marks = [{"kind": "postmortem", "frozen_t": dump["frozen_t"],
              "records": len(dump["records"])}
             for dump in flight.postmortems.get(host.name, ())]
    return _jsonl_bytes([meta, *records, *chain, *marks])


# ------------------------------------------------------------------- fleet


def metrics_records(registry: "MetricsRegistry",
                    prefix: Optional[str] = None) -> list[dict]:
    """Registry snapshot as export-shaped records (kind discriminator)."""
    snap = registry.snapshot(prefix=prefix)
    records = []
    for kind in ("counters", "gauges", "histograms"):
        for record in snap[kind]:
            records.append({"kind": kind.rstrip("s"), **record})
    return records


def fleet_metrics_payload(domain: "Domain") -> bytes:
    """``[obs]/fleet/metrics``: the whole registry, export-shaped JSONL."""
    for host in domain.hosts.values():
        if not host.crashed:
            host.snapshot()  # refresh per-host uptime gauges
    return _jsonl_bytes(metrics_records(domain.metrics.registry))


def fleet_hosts_payload(domain: "Domain") -> bytes:
    """``[obs]/fleet/hosts``: one kernel snapshot per live machine."""
    records = [host.snapshot() for host in domain.hosts.values()
               if not host.crashed]
    records.sort(key=lambda r: r["host_id"])
    return _json_bytes(records)


def fleet_alerts_payload(domain: "Domain") -> bytes:
    """``[obs]/fleet/alerts``: the SLO watchdog alert log, fleet-wide.

    JSONL: a leading ``meta`` record (enablement, armed rule names,
    fire/resolve totals, currently-active alerts) followed by one ``alert``
    record per fire/resolve transition, oldest first.
    """
    telemetry = domain.telemetry
    meta: dict = {"kind": "meta", "enabled": telemetry is not None}
    if telemetry is None:
        return _jsonl_bytes([meta])
    log = telemetry.alerts
    meta.update({
        "rules": [rule.name for rule in telemetry.rules],
        "fired": log.fired,
        "resolved": log.resolved,
        "active": [{"rule": rule, "host": host}
                   for rule, host in sorted(log.active)],
    })
    return _jsonl_bytes([meta, *log.to_records()])


def fleet_services_payload(domain: "Domain") -> bytes:
    """``[obs]/fleet/services``: every registration, domain-wide."""
    records = []
    for host in sorted(domain.hosts.values(), key=lambda h: h.host_id):
        if host.crashed:
            continue
        for entry in host.registry.snapshot():
            records.append({"host": host.name, **entry})
    return _json_bytes(records)
