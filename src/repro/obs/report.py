"""Trace reporting: ``python -m repro.obs.report trace.jsonl``.

Loads a span JSONL file (written by :func:`repro.obs.export.write_spans_jsonl`)
and renders, per request:

- the **hop timeline** -- the span tree with offsets, durations, and a bar
  chart, so a forwarded ``Open`` reads as client stub -> prefix server ->
  (wire) -> context server -> (wire) -> file server;
- the **critical-path breakdown** -- exclusive time per actor, i.e. "where
  did the milliseconds go: prefix server CPU, forwarding on the wire, or the
  file server?";
- a **top-N slowest resolutions** table across the whole file.

All render functions are pure (list[str] in, strings out) so tests can
assert on them without capturing stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.export import TraceFile, read_spans_jsonl
from repro.obs.span import Span, SpanNode, build_tree

BAR_WIDTH = 28


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def _label(span: Span, actors: Dict[int, str]) -> str:
    name = span.name
    csname = span.attrs.get("csname")
    if csname and not name.startswith(("ipc.", "net.", "server:")):
        name = f"{name} {csname!r}"
    return name


def _bar(start: float, end: Optional[float], window_start: float,
         window_end: float) -> str:
    """A fixed-width bar locating [start, end] inside the trace window."""
    if end is None or window_end <= window_start:
        return "?" * 3
    scale = BAR_WIDTH / (window_end - window_start)
    left = int((start - window_start) * scale)
    width = max(1, round((end - start) * scale))
    left = min(left, BAR_WIDTH - 1)
    width = min(width, BAR_WIDTH - left)
    return "." * left + "#" * width + "." * (BAR_WIDTH - left - width)


def render_timeline(roots: Sequence[SpanNode],
                    actors: Optional[Dict[int, str]] = None) -> str:
    """The hop timeline: one line per span, indented by tree depth."""
    actors = actors or {}
    if not roots:
        return "(empty trace)"
    window_start = min(node.span.start for node in roots)
    window_end = max((node.span.end or node.span.start) for node in roots)
    for root in roots:
        for __, node in root.walk():
            if node.span.end is not None:
                window_end = max(window_end, node.span.end)
    lines = [f"{'offset ms':>9}  {'dur ms':>8}  {'|' + ' ' * (BAR_WIDTH - 2) + '|'}  span"]
    for root in roots:
        for depth, node in root.walk():
            span = node.span
            offset = span.start - window_start
            duration = _ms(span.duration) if span.finished else "open"
            bar = _bar(span.start, span.end, window_start, window_end)
            indent = "  " * depth
            actor = f"  [{span.actor}]" if span.actor else ""
            lines.append(f"{_ms(offset):>9}  {duration:>8}  {bar}  "
                         f"{indent}{_label(span, actors)}{actor}")
    return "\n".join(lines)


def critical_path(roots: Sequence[SpanNode]) -> List[tuple[str, float]]:
    """Exclusive time per actor: span duration minus its children's.

    This is the "time in prefix server vs. forwarding vs. file server"
    breakdown: a span's self-time is what *it* spent that no child span
    accounts for.  Returned sorted by time, descending.
    """
    totals: Dict[str, float] = {}
    for root in roots:
        for __, node in root.walk():
            span = node.span
            if not span.finished:
                continue
            child_time = sum(child.span.duration for child in node.children
                             if child.span.finished)
            exclusive = max(0.0, span.duration - child_time)
            key = span.actor or span.name
            totals[key] = totals.get(key, 0.0) + exclusive
    return sorted(totals.items(), key=lambda item: item[1], reverse=True)


def render_critical_path(roots: Sequence[SpanNode]) -> str:
    rows = critical_path(roots)
    total = sum(seconds for __, seconds in rows)
    lines = [f"{'actor':<28} {'exclusive ms':>12}  {'share':>6}"]
    for actor, seconds in rows:
        share = seconds / total * 100 if total else 0.0
        lines.append(f"{actor:<28} {_ms(seconds):>12}  {share:5.1f}%")
    lines.append(f"{'total':<28} {_ms(total):>12}  100.0%")
    return "\n".join(lines)


def _trace_summary(trace_id: int, spans: List[Span]) -> dict:
    roots = build_tree(spans)
    root = roots[0].span if roots else spans[0]
    hops = sum(1 for span in spans if span.name.startswith("server:"))
    forwards = sum(1 for span in spans
                   if span.attrs.get("forwarded_to") is not None)
    reply = root.attrs.get("reply_code")
    if reply is None:
        for span in spans:
            if span.attrs.get("reply_code") is not None:
                reply = span.attrs["reply_code"]
    return {
        "trace_id": trace_id,
        "root": root,
        "total": max((s.end or s.start) for s in spans) - root.start,
        "hops": hops,
        "forwards": forwards,
        "reply": reply if reply is not None else "?",
    }


def slowest_traces(tracefile: TraceFile, top: int = 10) -> List[dict]:
    """Per-trace summaries, slowest first."""
    summaries = [_trace_summary(trace_id, spans)
                 for trace_id, spans in tracefile.traces().items()]
    summaries.sort(key=lambda s: s["total"], reverse=True)
    return summaries[:top]


def render_slowest_table(tracefile: TraceFile, top: int = 10) -> str:
    rows = slowest_traces(tracefile, top)
    lines = [f"{'trace':>6}  {'total ms':>9}  {'hops':>4}  {'fwd':>3}  "
             f"{'reply':<12} root"]
    for row in rows:
        root = row["root"]
        name = _label(root, tracefile.actors)
        lines.append(f"{row['trace_id']:>6}  {_ms(row['total']):>9}  "
                     f"{row['hops']:>4}  {row['forwards']:>3}  "
                     f"{str(row['reply']):<12} {name}")
    return "\n".join(lines)


def render_trace(tracefile: TraceFile, trace_id: int) -> str:
    """Timeline + critical path for one trace."""
    spans = tracefile.traces().get(trace_id)
    if not spans:
        return f"trace {trace_id} not found"
    roots = build_tree(spans)
    root = roots[0].span
    out = [
        f"trace {trace_id}: {_label(root, tracefile.actors)} "
        f"({_ms(root.duration)} ms, {len(spans)} spans)",
        "",
        "hop timeline:",
        render_timeline(roots, tracefile.actors),
        "",
        "critical path (exclusive time per actor):",
        render_critical_path(roots),
    ]
    unfinished = [s for s in spans if not s.finished]
    if unfinished:
        out.append("")
        out.append(f"warning: {len(unfinished)} span(s) never finished "
                   f"({', '.join(s.name for s in unfinished[:5])})")
    return "\n".join(out)


def render_cache_summary(counters: Sequence[dict]) -> str:
    """The name-cache scoreboard, derived from ``namecache.*`` counters.

    Hits are broken out by binding source (full-name hint, cached prefix
    binding, generic service pid); fallbacks are hits that turned out stale
    and were re-resolved, so they are subtracted from the effective rate.
    """
    hits_by_source: Dict[str, int] = {}
    totals = {"hits": 0, "misses": 0, "fallbacks": 0, "invalidations": 0}
    invalidations_by_reason: Dict[str, int] = {}
    seen = False
    for record in counters:
        name = record.get("name", "")
        if not name.startswith("namecache."):
            continue
        seen = True
        value = int(record.get("value", 0))
        tags = record.get("tags") or {}
        kind = name[len("namecache."):]
        if kind in totals:
            totals[kind] += value
        if kind == "hits" and "source" in tags:
            source = str(tags["source"])
            hits_by_source[source] = hits_by_source.get(source, 0) + value
        if kind == "invalidations" and "reason" in tags:
            reason = str(tags["reason"])
            invalidations_by_reason[reason] = (
                invalidations_by_reason.get(reason, 0) + value)
    if not seen:
        return ""
    lookups = totals["hits"] + totals["misses"]
    effective = max(0, totals["hits"] - totals["fallbacks"])
    rate = effective / lookups if lookups else 0.0
    lines = [f"{'name cache':<28} {'value':>12}"]
    lines.append(f"{'lookups':<28} {lookups:>12}")
    for source in sorted(hits_by_source):
        lines.append(f"{'hits{source=%s}' % source:<28} "
                     f"{hits_by_source[source]:>12}")
    lines.append(f"{'misses':<28} {totals['misses']:>12}")
    lines.append(f"{'fallbacks (stale hits)':<28} {totals['fallbacks']:>12}")
    for reason in sorted(invalidations_by_reason):
        lines.append(f"{'invalidations{reason=%s}' % reason:<28} "
                     f"{invalidations_by_reason[reason]:>12}")
    lines.append(f"{'effective hit rate':<28} {rate:>11.1%}")
    return "\n".join(lines)


def render_metrics(path: str | Path, top: int = 20) -> str:
    """Summarize a metrics JSONL file (counters + histogram percentiles)."""
    counters: List[dict] = []
    histograms: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "counter":
                counters.append(record)
            elif record.get("kind") == "histogram" and record.get("count"):
                histograms.append(record)
    lines: List[str] = []
    if counters:
        counters.sort(key=lambda r: r["value"], reverse=True)
        lines.append(f"{'counter':<44} {'value':>12}")
        for record in counters[:top]:
            tag = "".join(f"{{{k}={v}}}" for k, v in
                          sorted((record.get("tags") or {}).items()))
            lines.append(f"{record['name'] + tag:<44} {record['value']:>12}")
    if histograms:
        lines.append("")
        lines.append(f"{'histogram':<36} {'count':>7} {'mean':>9} "
                     f"{'p50':>9} {'p95':>9} {'p99':>9}")
        for record in histograms:
            tag = "".join(f"{{{k}={v}}}" for k, v in
                          sorted((record.get("tags") or {}).items()))
            lines.append(
                f"{record['name'] + tag:<36} {record['count']:>7} "
                f"{record['mean']:>9.6f} {record['p50']:>9.6f} "
                f"{record['p95']:>9.6f} {record['p99']:>9.6f}")
    cache_summary = render_cache_summary(counters)
    if cache_summary:
        lines.append("")
        lines.append(cache_summary)
    return "\n".join(lines) if lines else "(no metrics)"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render hop timelines and critical-path breakdowns "
                    "from a span JSONL trace file.")
    parser.add_argument("trace_file", help="span JSONL file to load")
    parser.add_argument("--top", type=int, default=10,
                        help="rows in the slowest-resolutions table")
    parser.add_argument("--trace", type=int, default=None,
                        help="render one trace id in full (default: slowest)")
    parser.add_argument("--all", action="store_true",
                        help="render every trace in full")
    parser.add_argument("--metrics", default=None,
                        help="also summarize a metrics JSONL file")
    args = parser.parse_args(argv)

    try:
        tracefile = read_spans_jsonl(args.trace_file)
    except OSError as err:
        print(f"{args.trace_file}: {err.strerror or err}", file=sys.stderr)
        return 1
    if not tracefile.spans:
        print(f"{args.trace_file}: no spans")
        return 1

    print(f"{args.trace_file}: {len(tracefile.spans)} spans, "
          f"{len(tracefile.traces())} traces")
    print()
    print(f"slowest resolutions (top {args.top}):")
    print(render_slowest_table(tracefile, args.top))

    if args.all:
        targets = [s["trace_id"] for s in
                   slowest_traces(tracefile, len(tracefile.traces()))]
    elif args.trace is not None:
        targets = [args.trace]
    else:
        slowest = slowest_traces(tracefile, 1)
        targets = [slowest[0]["trace_id"]] if slowest else []
    for trace_id in targets:
        print()
        print(render_trace(tracefile, trace_id))

    if args.metrics:
        print()
        print(f"metrics ({args.metrics}):")
        try:
            print(render_metrics(args.metrics))
        except OSError as err:
            print(f"{args.metrics}: {err.strerror or err}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into `head` or a closed pager -- not an error.
        sys.exit(0)
