"""Trace reporting: ``python -m repro.obs.report trace.jsonl``.

Loads a span JSONL file (written by :func:`repro.obs.export.write_spans_jsonl`)
and renders, per request:

- the **hop timeline** -- the span tree with offsets, durations, and a bar
  chart, so a forwarded ``Open`` reads as client stub -> prefix server ->
  (wire) -> context server -> (wire) -> file server;
- the **critical-path breakdown** -- exclusive time per actor, i.e. "where
  did the milliseconds go: prefix server CPU, forwarding on the wire, or the
  file server?";
- a **top-N slowest resolutions** table across the whole file.

All render functions are pure (list[str] in, strings out) so tests can
assert on them without capturing stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.export import TraceFile, read_spans_jsonl
from repro.obs.span import Span, SpanNode, build_tree

BAR_WIDTH = 28

#: Version of the ``--json`` report document.
REPORT_SCHEMA = 1


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def _label(span: Span, actors: Dict[int, str]) -> str:
    name = span.name
    csname = span.attrs.get("csname")
    if csname and not name.startswith(("ipc.", "net.", "server:")):
        name = f"{name} {csname!r}"
    return name


def _bar(start: float, end: Optional[float], window_start: float,
         window_end: float) -> str:
    """A fixed-width bar locating [start, end] inside the trace window."""
    if end is None or window_end <= window_start:
        return "?" * 3
    scale = BAR_WIDTH / (window_end - window_start)
    left = int((start - window_start) * scale)
    width = max(1, round((end - start) * scale))
    left = min(left, BAR_WIDTH - 1)
    width = min(width, BAR_WIDTH - left)
    return "." * left + "#" * width + "." * (BAR_WIDTH - left - width)


def render_timeline(roots: Sequence[SpanNode],
                    actors: Optional[Dict[int, str]] = None) -> str:
    """The hop timeline: one line per span, indented by tree depth."""
    actors = actors or {}
    if not roots:
        return "(empty trace)"
    window_start = min(node.span.start for node in roots)
    window_end = max((node.span.end or node.span.start) for node in roots)
    for root in roots:
        for __, node in root.walk():
            if node.span.end is not None:
                window_end = max(window_end, node.span.end)
    lines = [f"{'offset ms':>9}  {'dur ms':>8}  {'|' + ' ' * (BAR_WIDTH - 2) + '|'}  span"]
    for root in roots:
        for depth, node in root.walk():
            span = node.span
            offset = span.start - window_start
            duration = _ms(span.duration) if span.finished else "open"
            bar = _bar(span.start, span.end, window_start, window_end)
            indent = "  " * depth
            actor = f"  [{span.actor}]" if span.actor else ""
            lines.append(f"{_ms(offset):>9}  {duration:>8}  {bar}  "
                         f"{indent}{_label(span, actors)}{actor}")
    return "\n".join(lines)


def critical_path(roots: Sequence[SpanNode]) -> List[tuple[str, float]]:
    """Exclusive time per actor: span duration minus its children's.

    This is the "time in prefix server vs. forwarding vs. file server"
    breakdown: a span's self-time is what *it* spent that no child span
    accounts for.  Returned sorted by time, descending.
    """
    totals: Dict[str, float] = {}
    for root in roots:
        for __, node in root.walk():
            span = node.span
            if not span.finished:
                continue
            child_time = sum(child.span.duration for child in node.children
                             if child.span.finished)
            exclusive = max(0.0, span.duration - child_time)
            key = span.actor or span.name
            totals[key] = totals.get(key, 0.0) + exclusive
    return sorted(totals.items(), key=lambda item: item[1], reverse=True)


def render_critical_path(roots: Sequence[SpanNode]) -> str:
    rows = critical_path(roots)
    total = sum(seconds for __, seconds in rows)
    lines = [f"{'actor':<28} {'exclusive ms':>12}  {'share':>6}"]
    for actor, seconds in rows:
        share = seconds / total * 100 if total else 0.0
        lines.append(f"{actor:<28} {_ms(seconds):>12}  {share:5.1f}%")
    lines.append(f"{'total':<28} {_ms(total):>12}  100.0%")
    return "\n".join(lines)


def _trace_summary(trace_id: int, spans: List[Span]) -> dict:
    roots = build_tree(spans)
    root = roots[0].span if roots else spans[0]
    hops = sum(1 for span in spans if span.name.startswith("server:"))
    forwards = sum(1 for span in spans
                   if span.attrs.get("forwarded_to") is not None)
    reply = root.attrs.get("reply_code")
    if reply is None:
        for span in spans:
            if span.attrs.get("reply_code") is not None:
                reply = span.attrs["reply_code"]
    return {
        "trace_id": trace_id,
        "root": root,
        "total": max((s.end or s.start) for s in spans) - root.start,
        "hops": hops,
        "forwards": forwards,
        "reply": reply if reply is not None else "?",
    }


def slowest_traces(tracefile: TraceFile, top: int = 10) -> List[dict]:
    """Per-trace summaries, slowest first."""
    summaries = [_trace_summary(trace_id, spans)
                 for trace_id, spans in tracefile.traces().items()]
    summaries.sort(key=lambda s: s["total"], reverse=True)
    return summaries[:top]


def render_slowest_table(tracefile: TraceFile, top: int = 10) -> str:
    rows = slowest_traces(tracefile, top)
    lines = [f"{'trace':>6}  {'total ms':>9}  {'hops':>4}  {'fwd':>3}  "
             f"{'reply':<12} root"]
    for row in rows:
        root = row["root"]
        name = _label(root, tracefile.actors)
        lines.append(f"{row['trace_id']:>6}  {_ms(row['total']):>9}  "
                     f"{row['hops']:>4}  {row['forwards']:>3}  "
                     f"{str(row['reply']):<12} {name}")
    return "\n".join(lines)


def render_trace(tracefile: TraceFile, trace_id: int) -> str:
    """Timeline + critical path for one trace."""
    spans = tracefile.traces().get(trace_id)
    if not spans:
        return f"trace {trace_id} not found"
    roots = build_tree(spans)
    root = roots[0].span
    out = [
        f"trace {trace_id}: {_label(root, tracefile.actors)} "
        f"({_ms(root.duration)} ms, {len(spans)} spans)",
        "",
        "hop timeline:",
        render_timeline(roots, tracefile.actors),
        "",
        "critical path (exclusive time per actor):",
        render_critical_path(roots),
    ]
    unfinished = [s for s in spans if not s.finished]
    if unfinished:
        out.append("")
        out.append(f"warning: {len(unfinished)} span(s) never finished "
                   f"({', '.join(s.name for s in unfinished[:5])})")
    return "\n".join(out)


def render_cache_summary(counters: Sequence[dict]) -> str:
    """The name-cache scoreboard, derived from ``namecache.*`` counters.

    Hits are broken out by binding source (full-name hint, cached prefix
    binding, generic service pid); fallbacks are hits that turned out stale
    and were re-resolved, so they are subtracted from the effective rate.
    """
    hits_by_source: Dict[str, int] = {}
    totals = {"hits": 0, "misses": 0, "fallbacks": 0, "invalidations": 0}
    invalidations_by_reason: Dict[str, int] = {}
    seen = False
    for record in counters:
        name = record.get("name", "")
        if not name.startswith("namecache."):
            continue
        seen = True
        value = int(record.get("value", 0))
        tags = record.get("tags") or {}
        kind = name[len("namecache."):]
        if kind in totals:
            totals[kind] += value
        if kind == "hits" and "source" in tags:
            source = str(tags["source"])
            hits_by_source[source] = hits_by_source.get(source, 0) + value
        if kind == "invalidations" and "reason" in tags:
            reason = str(tags["reason"])
            invalidations_by_reason[reason] = (
                invalidations_by_reason.get(reason, 0) + value)
    if not seen:
        return ""
    lookups = totals["hits"] + totals["misses"]
    effective = max(0, totals["hits"] - totals["fallbacks"])
    rate = effective / lookups if lookups else 0.0
    lines = [f"{'name cache':<28} {'value':>12}"]
    lines.append(f"{'lookups':<28} {lookups:>12}")
    for source in sorted(hits_by_source):
        lines.append(f"{'hits{source=%s}' % source:<28} "
                     f"{hits_by_source[source]:>12}")
    lines.append(f"{'misses':<28} {totals['misses']:>12}")
    lines.append(f"{'fallbacks (stale hits)':<28} {totals['fallbacks']:>12}")
    for reason in sorted(invalidations_by_reason):
        lines.append(f"{'invalidations{reason=%s}' % reason:<28} "
                     f"{invalidations_by_reason[reason]:>12}")
    lines.append(f"{'effective hit rate':<28} {rate:>11.1%}")
    return "\n".join(lines)


def render_coherence_summary(counters: Sequence[dict]) -> str:
    """The coherence scoreboard, derived from ``coherence.*`` counters.

    Present only in runs with an armed coherence probe
    (:func:`repro.obs.audit.enable_coherence`): invalidation/SYNC notice
    flow, lease churn by kind, and the two served-wrongness signals the
    auditor tracks (stale hits within TTL, negative-cache hits).
    """
    notices: Dict[str, int] = {}
    leases: Dict[str, int] = {}
    totals = {"lookups": 0, "stale_hits": 0, "negcache_hits": 0}
    seen = False
    for record in counters:
        name = record.get("name", "")
        if not name.startswith("coherence."):
            continue
        seen = True
        value = int(record.get("value", 0))
        tags = record.get("tags") or {}
        kind = name[len("coherence."):]
        if kind in totals:
            totals[kind] += value
        elif kind == "notices":
            phase = str(tags.get("phase", "?"))
            notices[phase] = notices.get(phase, 0) + value
        elif kind == "lease_events":
            lease_kind = str(tags.get("kind", "?"))
            leases[lease_kind] = leases.get(lease_kind, 0) + value
    if not seen:
        return ""
    lines = [f"{'coherence':<28} {'value':>12}"]
    for phase in sorted(notices):
        lines.append(f"{'notices{phase=%s}' % phase:<28} "
                     f"{notices[phase]:>12}")
    for lease_kind in sorted(leases):
        lines.append(f"{'leases{kind=%s}' % lease_kind:<28} "
                     f"{leases[lease_kind]:>12}")
    lines.append(f"{'shard lookups':<28} {totals['lookups']:>12}")
    lines.append(f"{'stale hits (within TTL)':<28} "
                 f"{totals['stale_hits']:>12}")
    lines.append(f"{'negative-cache hits':<28} "
                 f"{totals['negcache_hits']:>12}")
    return "\n".join(lines)


def load_metrics_records(path: str | Path) -> List[dict]:
    """Load export-shaped metric records from a metrics JSONL file."""
    records: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def render_metrics(path: str | Path, top: int = 20) -> str:
    """Summarize a metrics JSONL file (counters + histogram percentiles)."""
    return render_metrics_records(load_metrics_records(path), top)


def render_metrics_records(records: Sequence[dict], top: int = 20) -> str:
    """Summarize export-shaped metric records (from a file or a live read).

    The same record shapes come out of ``write_metrics_jsonl`` files and of
    a live ``[obs]/fleet/metrics`` read, so ``--live`` and file mode share
    this renderer.
    """
    counters: List[dict] = []
    histograms: List[dict] = []
    for record in records:
        if record.get("kind") == "counter":
            counters.append(dict(record))
        elif record.get("kind") == "histogram" and record.get("count"):
            histograms.append(record)
    lines: List[str] = []
    if counters:
        counters.sort(key=lambda r: r["value"], reverse=True)
        lines.append(f"{'counter':<44} {'value':>12}")
        for record in counters[:top]:
            tag = "".join(f"{{{k}={v}}}" for k, v in
                          sorted((record.get("tags") or {}).items()))
            lines.append(f"{record['name'] + tag:<44} {record['value']:>12}")
    if histograms:
        lines.append("")
        lines.append(f"{'histogram':<36} {'count':>7} {'mean':>9} "
                     f"{'p50':>9} {'p95':>9} {'p99':>9}")
        for record in histograms:
            tag = "".join(f"{{{k}={v}}}" for k, v in
                          sorted((record.get("tags") or {}).items()))
            lines.append(
                f"{record['name'] + tag:<36} {record['count']:>7} "
                f"{record['mean']:>9.6f} {record['p50']:>9.6f} "
                f"{record['p95']:>9.6f} {record['p99']:>9.6f}")
    cache_summary = render_cache_summary(counters)
    if cache_summary:
        lines.append("")
        lines.append(cache_summary)
    coherence_summary = render_coherence_summary(counters)
    if coherence_summary:
        lines.append("")
        lines.append(coherence_summary)
    return "\n".join(lines) if lines else "(no metrics)"


def timeline_records(roots: Sequence[SpanNode]) -> List[dict]:
    """The hop timeline as records: one dict per span, depth-annotated.

    The machine-readable twin of :func:`render_timeline`, used by
    ``--json``; offsets are relative to the window start, in ms.
    """
    if not roots:
        return []
    window_start = min(node.span.start for node in roots)
    records = []
    for root in roots:
        for depth, node in root.walk():
            span = node.span
            records.append({
                "name": span.name,
                "actor": span.actor,
                "depth": depth,
                "offset_ms": (span.start - window_start) * 1e3,
                "duration_ms": (span.duration * 1e3 if span.finished
                                else None),
                "attrs": span.attrs,
            })
    return records


def trace_document(tracefile: TraceFile, trace_id: int) -> Optional[dict]:
    """One trace as a JSON-ready document: timeline + critical path."""
    spans = tracefile.traces().get(trace_id)
    if not spans:
        return None
    roots = build_tree(spans)
    root = roots[0].span
    return {
        "trace_id": trace_id,
        "root": root.name,
        "actor": root.actor,
        "csname": root.attrs.get("csname"),
        "duration_ms": root.duration * 1e3 if root.finished else None,
        "span_count": len(spans),
        "timeline": timeline_records(roots),
        "critical_path": [
            {"actor": actor, "exclusive_ms": seconds * 1e3}
            for actor, seconds in critical_path(roots)],
        "unfinished_spans": [s.name for s in spans if not s.finished],
    }


def report_document(tracefile: TraceFile, top: int = 10,
                    trace_ids: Optional[Sequence[int]] = None,
                    metrics_records: Optional[Sequence[dict]] = None) -> dict:
    """The whole report, machine-readable (the ``--json`` output).

    ``trace_ids`` selects which traces get full timelines (default: the
    slowest one); the slowest-resolutions table and file meta are always
    included, and ``metrics_records`` adds the metrics scoreboard.
    """
    if trace_ids is None:
        slowest = slowest_traces(tracefile, 1)
        trace_ids = [slowest[0]["trace_id"]] if slowest else []
    document = {
        "schema": REPORT_SCHEMA,
        "meta": dict(tracefile.meta),
        "span_count": len(tracefile.spans),
        "trace_count": len(tracefile.traces()),
        "dropped_events": tracefile.dropped_events,
        "slowest": [
            {
                "trace_id": row["trace_id"],
                "total_ms": row["total"] * 1e3,
                "hops": row["hops"],
                "forwards": row["forwards"],
                "reply": row["reply"],
                "root": row["root"].name,
                "actor": row["root"].actor,
                "csname": row["root"].attrs.get("csname"),
            }
            for row in slowest_traces(tracefile, top)],
        "traces": [doc for doc in
                   (trace_document(tracefile, trace_id)
                    for trace_id in trace_ids)
                   if doc is not None],
    }
    if metrics_records is not None:
        document["metrics"] = [dict(record) for record in metrics_records]
    return document


def render_dropped_warning(tracefile: TraceFile) -> str:
    """A truncation banner when the event tracer's ring buffer overflowed.

    Without this a truncated trace reads as complete -- the drops happened
    *before* export, so nothing else in the file betrays them.
    """
    dropped = tracefile.dropped_events
    if not dropped:
        return ""
    limit = tracefile.meta.get("event_limit")
    suffix = f" (ring buffer limit {limit})" if limit else ""
    return (f"warning: {dropped} trace event(s) dropped before export"
            f"{suffix} -- this trace is incomplete")


def run_live(top: int = 10) -> int:
    """``--live``: read the ``[obs]`` name space instead of JSONL files.

    Builds a two-host session in-process (workstation + file server, stat
    servers on both), runs a small file workload to give the counters
    something to say, then a client program reads ``[obs]`` names through
    the full simulated protocol -- prefix server -> root obs server ->
    per-host stat servers -- and the renderers run on what came back.
    """
    from repro.kernel.domain import Domain
    from repro.obs import Observability
    from repro.obs.export import _span_from_record
    from repro.runtime import files
    from repro.runtime.workstation import setup_workstation, standard_prefixes
    from repro.servers import VFileServer, start_server
    from repro.servers.statserver import enable_obs_namespace

    obs = Observability()
    domain = Domain(obs=obs)
    workstation = setup_workstation(domain, "live", name="ws1",
                                    name_cache=True)
    fs_host = domain.create_host("fs1")
    fileserver = start_server(fs_host, VFileServer(user="live"))
    standard_prefixes(workstation, fileserver)
    enable_obs_namespace(domain, root_host=workstation.host)
    domain.enable_telemetry(interval=0.05)

    box: Dict[str, Dict[str, bytes]] = {}

    def client(session):
        for index in range(3):
            name = f"[home]live{index}.txt"
            yield from files.write_file(session, name, b"x" * 64)
            yield from files.read_file(session, name)
        reads: Dict[str, bytes] = {}
        reads["fleet"] = yield from session.read_file("[obs]/fleet/metrics")
        for host_name in ("ws1", "fs1"):
            reads[host_name] = yield from session.read_file(
                f"[obs]/hosts/{host_name}/metrics")
        reads["spans"] = yield from session.read_file(
            "[obs]/hosts/fs1/spans/recent")
        for host_name in ("ws1", "fs1"):
            reads[f"series:{host_name}"] = yield from session.read_file(
                f"[obs]/hosts/{host_name}/timeseries/resolutions")
        box["reads"] = reads

    workstation.host.spawn(client(workstation.session()), name="report-live")
    domain.run()
    domain.check_healthy()
    reads = box["reads"]

    print("live [obs] reads over a two-host session (ws1 + fs1):")
    for host_name in ("ws1", "fs1"):
        snap = json.loads(reads[host_name])
        counters = ", ".join(f"{k}={v}" for k, v in
                             sorted(snap["counters"].items()))
        print(f"  [obs]/hosts/{host_name}/metrics: "
              f"uptime {snap['uptime_seconds']:.3f}s, "
              f"{snap['process_count']} processes, {counters}")
    print()
    print("[obs]/fleet/metrics:")
    records = [json.loads(line) for line in
               reads["fleet"].decode().splitlines() if line.strip()]
    print(render_metrics_records(records, top))
    span_lines = [line for line in reads["spans"].decode().splitlines()
                  if line.strip()]
    tracefile = TraceFile(
        spans=[_span_from_record(json.loads(line)) for line in span_lines],
        actors=dict(obs.actors))
    print()
    print(f"[obs]/hosts/fs1/spans/recent: {len(tracefile.spans)} spans")
    if tracefile.spans:
        print(render_slowest_table(tracefile, top))
    print()
    print("telemetry sampling continuity "
          "([obs]/hosts/<h>/timeseries/resolutions):")
    for host_name in ("ws1", "fs1"):
        print("  " + describe_series_continuity(
            host_name, reads[f"series:{host_name}"]))
    return 0


def describe_series_continuity(host_name: str, payload: bytes) -> str:
    """One-line sampling-continuity verdict for a timeseries JSONL payload.

    A crashed-then-restarted host leaves explicit ``gap`` records on its
    series (see ``repro.obs.telemetry``); this renders them -- or says
    plainly that sampling was continuous / disabled -- so the gap is never
    left implicit in the ring buffer.
    """
    records = [json.loads(line)
               for line in payload.decode().splitlines() if line.strip()]
    meta = records[0] if records else {}
    if not meta.get("enabled"):
        return f"{host_name}: telemetry disabled"
    samples = sum(1 for r in records if r.get("kind") == "sample")
    gaps = [r for r in records if r.get("kind") == "gap"]
    if not gaps:
        return f"{host_name}: {samples} samples, no sampling gaps"
    spans = ", ".join(
        f"{gap['start']:.3f}s -> "
        + (f"{gap['end']:.3f}s" if gap["end"] is not None else "end of run")
        for gap in gaps)
    return (f"{host_name}: {samples} samples, "
            f"{len(gaps)} sampling gap(s) (host down): {spans}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render hop timelines and critical-path breakdowns "
                    "from a span JSONL trace file.")
    parser.add_argument("trace_file", nargs="?", default=None,
                        help="span JSONL file to load (omit with --live)")
    parser.add_argument("--top", type=int, default=10,
                        help="rows in the slowest-resolutions table")
    parser.add_argument("--trace", type=int, default=None,
                        help="render one trace id in full (default: slowest)")
    parser.add_argument("--all", action="store_true",
                        help="render every trace in full")
    parser.add_argument("--metrics", default=None,
                        help="also summarize a metrics JSONL file")
    parser.add_argument("--live", action="store_true",
                        help="read live [obs] names from a simulated "
                             "two-host session instead of JSONL files")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as one JSON document (hop "
                             "timelines, slowest table, metrics) instead "
                             "of rendered text")
    args = parser.parse_args(argv)

    if args.live:
        if args.json:
            parser.error("--json works on trace files, not with --live")
        return run_live(args.top)
    if args.trace_file is None:
        parser.error("a trace file is required unless --live is given")

    try:
        tracefile = read_spans_jsonl(args.trace_file)
    except OSError as err:
        print(f"error: cannot read trace file {args.trace_file}: "
              f"{err.strerror or err}", file=sys.stderr)
        return 2
    if not tracefile.spans:
        print(f"error: {args.trace_file} contains no spans -- nothing to "
              "report (was the run traced?)", file=sys.stderr)
        return 2

    if args.json:
        if args.all:
            trace_ids = [s["trace_id"] for s in
                         slowest_traces(tracefile, len(tracefile.traces()))]
        elif args.trace is not None:
            trace_ids = [args.trace]
        else:
            trace_ids = None
        metrics_records = None
        if args.metrics:
            try:
                metrics_records = load_metrics_records(args.metrics)
            except OSError as err:
                print(f"error: cannot read metrics file {args.metrics}: "
                      f"{err.strerror or err}", file=sys.stderr)
                return 2
        document = report_document(tracefile, args.top, trace_ids,
                                   metrics_records)
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    print(f"{args.trace_file}: {len(tracefile.spans)} spans, "
          f"{len(tracefile.traces())} traces")
    warning = render_dropped_warning(tracefile)
    if warning:
        print(warning)
    print()
    print(f"slowest resolutions (top {args.top}):")
    print(render_slowest_table(tracefile, args.top))

    if args.all:
        targets = [s["trace_id"] for s in
                   slowest_traces(tracefile, len(tracefile.traces()))]
    elif args.trace is not None:
        targets = [args.trace]
    else:
        slowest = slowest_traces(tracefile, 1)
        targets = [slowest[0]["trace_id"]] if slowest else []
    for trace_id in targets:
        print()
        print(render_trace(tracefile, trace_id))

    if args.metrics:
        print()
        print(f"metrics ({args.metrics}):")
        try:
            print(render_metrics(args.metrics))
        except OSError as err:
            print(f"error: cannot read metrics file {args.metrics}: "
                  f"{err.strerror or err}", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into `head` or a closed pager -- not an error.
        sys.exit(0)
