"""Causal span tracing for multi-hop name resolutions.

The paper's name-handling protocol turns a single ``Open("[bin]ls")`` into a
*walk*: client stub -> context prefix server -> (``Forward``) -> context
server -> (``Forward``) -> file server -> reply.  The flat event trace in
:mod:`repro.sim.trace` cannot reconstruct that walk as one request; this
module can.

A :class:`SpanContext` is the propagation token -- ``(trace_id, span_id,
parent_id)`` -- carried on :class:`repro.kernel.messages.Message` so the
kernel's ``Send``/``Forward``/``Reply`` primitives extend causality across
hops automatically.  A :class:`Span` is one timed node in the tree (the
client stub, one IPC transaction, one server's handling of a delivery, one
frame on the wire).  The :class:`TraceCollector` hands out ids, gathers
finished spans, and rebuilds per-request trees.

Everything here is dependency-free and charges **zero simulated time**:
spans observe the discrete-event clock, they never advance it, so enabling
tracing does not perturb the calibrated latencies the benchmarks assert.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass(frozen=True)
class SpanContext:
    """The propagation token: who caused the work about to happen.

    ``trace_id`` names the whole request tree; ``span_id`` names one node;
    ``parent_id`` is the causing node (``None`` for a root).
    """

    trace_id: int
    span_id: int
    parent_id: Optional[int] = None

    def child_of(self) -> "SpanContext":
        """What a child context would reference (same trace, us as parent)."""
        return self


@dataclass
class Span:
    """One timed node in a request tree."""

    name: str
    context: SpanContext
    start: float
    end: Optional[float] = None
    actor: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def trace_id(self) -> int:
        return self.context.trace_id

    @property
    def span_id(self) -> int:
        return self.context.span_id

    @property
    def parent_id(self) -> Optional[int]:
        return self.context.parent_id

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span duration in seconds (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def append_attr(self, key: str, value: Any) -> None:
        """Accumulate ``value`` onto a list-valued attribute."""
        self.attrs.setdefault(key, []).append(value)


@dataclass
class SpanNode:
    """A span plus its children, as rebuilt by :meth:`TraceCollector.tree`."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)

    def walk(self) -> Iterable[tuple[int, "SpanNode"]]:
        """Depth-first (depth, node) pairs, children in start order."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    @property
    def total(self) -> float:
        return self.span.duration


class TraceCollector:
    """Allocates span ids and gathers every span a simulation produces.

    Ids are handed out from plain counters, so a given program produces the
    same trace ids on every run -- the same determinism contract as the
    simulation engine itself.
    """

    def __init__(self) -> None:
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self.spans: List[Span] = []

    # ------------------------------------------------------------- recording

    def start(self, name: str, time: float,
              parent: Optional[SpanContext] = None, actor: str = "",
              **attrs: Any) -> Span:
        """Open a span.  With ``parent`` it joins that trace; else a new one."""
        if parent is not None:
            context = SpanContext(trace_id=parent.trace_id,
                                  span_id=next(self._span_ids),
                                  parent_id=parent.span_id)
        else:
            context = SpanContext(trace_id=next(self._trace_ids),
                                  span_id=next(self._span_ids),
                                  parent_id=None)
        span = Span(name=name, context=context, start=time, actor=actor,
                    attrs=dict(attrs))
        self.spans.append(span)
        return span

    def finish(self, span: Span, time: float, **attrs: Any) -> Span:
        span.end = time
        span.attrs.update(attrs)
        return span

    def emit(self, name: str, start: float, end: float,
             parent: Optional[SpanContext] = None, actor: str = "",
             **attrs: Any) -> Span:
        """Record an already-completed span in one call."""
        span = self.start(name, start, parent=parent, actor=actor, **attrs)
        span.end = end
        return span

    # --------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.spans)

    def trace_ids(self) -> list[int]:
        seen: dict[int, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def trace(self, trace_id: int) -> list[Span]:
        """All spans of one trace, in start order (ties: recording order)."""
        selected = [s for s in self.spans if s.trace_id == trace_id]
        return sorted(selected, key=lambda s: s.start)

    def unfinished(self) -> list[Span]:
        return [s for s in self.spans if not s.finished]

    def find(self, name_prefix: str, trace_id: Optional[int] = None) -> list[Span]:
        return [s for s in self.spans
                if s.name.startswith(name_prefix)
                and (trace_id is None or s.trace_id == trace_id)]

    def tree(self, trace_id: int) -> list[SpanNode]:
        """Rebuild the span tree; returns the roots (normally exactly one)."""
        return build_tree(self.trace(trace_id))


def build_tree(spans: Iterable[Span]) -> list[SpanNode]:
    """Link spans into parent/child trees.

    Spans whose parent is absent from ``spans`` (e.g. a truncated export)
    become roots, so a partial file still renders.
    """
    nodes = {span.span_id: SpanNode(span) for span in spans}
    roots: list[SpanNode] = []
    for node in nodes.values():
        parent = node.span.parent_id
        if parent is not None and parent in nodes:
            nodes[parent].children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: n.span.start)
    roots.sort(key=lambda n: n.span.start)
    return roots
