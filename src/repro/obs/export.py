"""JSONL export for spans and metric snapshots.

One JSON object per line, so traces from long runs stream without holding
the file in memory, concatenate across runs, and grep cleanly.  Two record
shapes share a file format via a ``"kind"`` discriminator:

- ``{"kind": "span", ...}`` -- one finished (or abandoned) span;
- ``{"kind": "actor", ...}`` -- pid -> server-kind labels for pretty reports;
- ``{"kind": "meta", ...}`` -- one optional leading record of run metadata
  (notably ``dropped_events`` from the ring-buffer tracer, so a truncated
  trace does not read as complete).

Metric snapshots use their own file (``write_metrics_jsonl``) with
``counter`` / ``gauge`` / ``histogram`` records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.span import Span, SpanContext, TraceCollector


def _jsonable(value: Any) -> Any:
    """Coerce attribute values to something JSON can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).decode("utf-8", errors="replace")
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def span_record(span: Span) -> dict:
    """The JSONL shape of one span."""
    return {
        "kind": "span",
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "actor": span.actor,
        "start": span.start,
        "end": span.end,
        "attrs": _jsonable(span.attrs),
    }


def write_spans_jsonl(
    source: Union[TraceCollector, Iterable[Span]],
    path: str | Path,
    actors: Optional[Dict[int, str]] = None,
    meta: Optional[dict] = None,
) -> int:
    """Write every span (and optional actor labels) to ``path``.

    Returns the number of span records written.  Unfinished spans are
    exported with ``"end": null`` so a report can flag them rather than
    silently losing work that was in flight when the run stopped.  ``meta``
    (if given and non-empty) becomes a single leading ``"kind": "meta"``
    record -- the exporter's place for run-level facts such as the event
    tracer's dropped count.
    """
    spans = source.spans if isinstance(source, TraceCollector) else list(source)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        if meta:
            handle.write(json.dumps(
                {"kind": "meta", **_jsonable(meta)}) + "\n")
        for pid_value, kind in sorted((actors or {}).items()):
            handle.write(json.dumps(
                {"kind": "actor", "pid": pid_value, "server": kind}) + "\n")
        for span in spans:
            handle.write(json.dumps(span_record(span)) + "\n")
    return len(spans)


def write_metrics_jsonl(registry: MetricsRegistry, path: str | Path) -> int:
    """Write one record per instrument from a registry snapshot."""
    snap = registry.snapshot()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with path.open("w", encoding="utf-8") as handle:
        for kind in ("counters", "gauges", "histograms"):
            for record in snap[kind]:
                handle.write(json.dumps(
                    {"kind": kind.rstrip("s"), **record}) + "\n")
                written += 1
    return written


@dataclass
class TraceFile:
    """A parsed span JSONL file: spans plus actor labels."""

    spans: List[Span] = field(default_factory=list)
    actors: Dict[int, str] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def dropped_events(self) -> int:
        """Events the ring-buffer tracer discarded during the traced run."""
        return int(self.meta.get("dropped_events", 0) or 0)

    def traces(self) -> Dict[int, List[Span]]:
        """trace_id -> spans in start order."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        for spans in grouped.values():
            spans.sort(key=lambda s: s.start)
        return grouped


def _span_from_record(record: dict) -> Span:
    context = SpanContext(trace_id=int(record["trace_id"]),
                          span_id=int(record["span_id"]),
                          parent_id=(int(record["parent_id"])
                                     if record.get("parent_id") is not None
                                     else None))
    return Span(name=str(record.get("name", "")),
                context=context,
                start=float(record["start"]),
                end=(float(record["end"])
                     if record.get("end") is not None else None),
                actor=str(record.get("actor", "")),
                attrs=dict(record.get("attrs") or {}))


def read_spans_jsonl(path: str | Path) -> TraceFile:
    """Parse a span JSONL file (tolerating blank lines)."""
    result = TraceFile()
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind", "span")
            if kind == "actor":
                result.actors[int(record["pid"])] = str(record["server"])
            elif kind == "meta":
                result.meta.update(
                    {k: v for k, v in record.items() if k != "kind"})
            elif kind == "span":
                result.spans.append(_span_from_record(record))
    return result
