"""Continuous telemetry: per-host time series and SLO watchdogs.

Everything the ``[obs]`` name space serves (PR 3) is a point-in-time
snapshot.  This module adds the *time* dimension: a domain-wide
:class:`TelemetryCollector` samples every host's kernel counters at a fixed
interval on the **simulated** clock into bounded ring-buffer time series,
and an SLO watchdog engine evaluates declarative rules
(:class:`SloRule` -- ``threshold``, ``rate_of_change``, ``invariant``) at
each sample tick, emitting typed :class:`AlertEvent` records (fire/resolve,
severity, offending host and metric) into a bounded :class:`AlertLog`.

Cost model, the V way (same split as the stat server):

- *capturing* a sample is plain memory reads inside an engine callback --
  zero simulated cost, no rng draws, so enabling telemetry never perturbs
  the simulated behaviour of the workload it watches;
- *reading* the series back happens through ``[obs]/hosts/<h>/timeseries/
  <metric>`` and ``[obs]/fleet/alerts`` -- ordinary, fully-charged traffic.

With telemetry disabled (the default) the kernel hot path pays exactly two
cheap operations: stamping ``Transaction.sent_at`` at Send and one
``domain.telemetry is not None`` branch per completed transaction -- the
E15 benchmark pins this at under 2% wall-clock overhead.

The sample tick is a self-rescheduling engine event.  So that ``run()``
(which drains the queue) still terminates, the tick *parks* itself when it
finds the rest of the event queue empty -- the simulation has quiesced and
there is nothing left to watch.  :meth:`TelemetryCollector.start` re-arms a
parked collector.

Sampled series, one ring buffer per (host, metric) and a ``fleet``
aggregate of each:

==============================  =========================================
``resolutions``                 completed IPC transactions this tick (delta)
``cache_hits``                  client name-cache hits this tick (delta)
``cache_misses``                client name-cache misses this tick (delta)
``retransmits``                 request retransmissions this tick (delta)
``drops``                       frames lost to injected faults (delta)
``queue_depth``                 queued deliveries + outstanding sends
``p99_ms``                      p99 transaction latency this tick (ms)
``coherence.invalidation_lag``  worst INVALIDATE/SYNC propagation lag
                                applied this tick (ms; probe-fed)
``coherence.staleness_at_hit``  oldest cached binding served this tick
                                (ms since install; probe-fed)
``coherence.lease_churn``       lease grants + refreshes + refusals this
                                tick (probe-fed)
``coherence.negcache_hits``     negative-cache hits this tick (probe-fed)
``coherence.shard_hotness``     shard lookups served by this host's
                                replica this tick (probe-fed)
==============================  =========================================

The five ``coherence.*`` series are fed by the :class:`CoherenceProbe`
(:mod:`repro.obs.audit`) rather than kernel counters: the shard layer calls
the probe's bookkeeping hooks (pure memory writes, no events, no rng) and
the collector drains the probe's per-host tick buckets here.  With no probe
armed the keys are simply absent from each sample, so nothing downstream
changes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.domain import Domain
    from repro.kernel.host import Host

#: Metric names every host's ``timeseries/`` context serves, in order.
#: The ``coherence.*`` series sample only while a coherence probe is armed
#: (:func:`repro.obs.audit.enable_coherence`); without one the names exist
#: uniformly but their rings stay empty, like every other disabled leaf.
SERIES_METRICS: tuple[str, ...] = (
    "resolutions", "cache_hits", "cache_misses", "retransmits", "drops",
    "queue_depth", "p99_ms",
    "coherence.invalidation_lag", "coherence.staleness_at_hit",
    "coherence.lease_churn", "coherence.negcache_hits",
    "coherence.shard_hotness",
)

#: Metrics whose fleet aggregate is the per-host *max*, not the sum -- a
#: latency-like quantity summed across hosts means nothing.  Everything
#: else aggregates by sum.
FLEET_MAX_METRICS = frozenset({
    "p99_ms", "coherence.invalidation_lag", "coherence.staleness_at_hit",
})

#: Pseudo-host key for domain-wide aggregate series (fleet-scope rules).
FLEET = "fleet"

#: Default sampling interval, simulated seconds.
DEFAULT_INTERVAL = 0.05

#: Default ring capacity per series (samples kept per (host, metric)).
DEFAULT_CAPACITY = 512

#: Cap on latencies buffered between ticks for the p99 window -- guards
#: memory when the collector is enabled with an interval longer than the
#: run (the E15 hook-cost measurement does exactly that).
LATENCY_WINDOW_MAX = 4096

#: Alert events kept (fire + resolve records; oldest dropped first).
ALERT_LOG_CAPACITY = 1024


class TimeSeries:
    """A bounded (time, value) ring buffer for one host's one metric."""

    __slots__ = ("host", "metric", "_samples")

    def __init__(self, host: str, metric: str,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.host = host
        self.metric = metric
        self._samples: deque[tuple[float, float]] = deque(maxlen=capacity)

    def record(self, t: float, value: float) -> None:
        self._samples.append((t, value))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def capacity(self) -> int:
        return self._samples.maxlen or 0

    def samples(self) -> list[tuple[float, float]]:
        return list(self._samples)

    def values(self) -> list[float]:
        return [value for __, value in self._samples]

    def last(self) -> Optional[float]:
        return self._samples[-1][1] if self._samples else None

    def to_records(self) -> list[dict]:
        """Export-shaped sample records (``kind`` discriminator)."""
        return [{"kind": "sample", "t": t, "value": value}
                for t, value in self._samples]


# ------------------------------------------------------------------ rules


@dataclass
class SloRule:
    """One declarative service-level objective, checked every tick.

    ``kind`` selects the evaluation:

    - ``threshold`` -- breach while ``value <op> limit``;
    - ``rate_of_change`` -- breach while ``|value - previous| > limit``
      (first sample never breaches: there is no previous);
    - ``invariant`` -- ``predicate(value)`` must hold (or, with no
      predicate, ``value <op> limit`` must *not*); fires immediately and
      defaults to ``critical`` -- an invariant has no grace period.

    ``for_ticks`` consecutive breaching samples fire the alert;
    ``clear_ticks`` consecutive healthy samples resolve it (hysteresis, so
    a metric oscillating around its limit does not flap).  A tick with no
    sample for the metric (e.g. ``p99_ms`` on an idle host) counts as
    healthy.
    """

    name: str
    metric: str
    kind: str = "threshold"
    op: str = ">"                       # ">" or "<"
    limit: float = 0.0
    severity: str = "warning"           # "warning" | "critical"
    for_ticks: int = 1
    clear_ticks: int = 2
    scope: str = "host"                 # "host" | "fleet"
    predicate: Optional[Callable[[float], bool]] = field(
        default=None, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in ("threshold", "rate_of_change", "invariant"):
            raise ValueError(f"unknown SLO rule kind {self.kind!r}")
        if self.op not in (">", "<"):
            raise ValueError(f"unknown SLO comparison {self.op!r}")
        if self.kind == "invariant" and self.severity == "warning":
            self.severity = "critical"

    def _compare(self, value: float) -> bool:
        return value > self.limit if self.op == ">" else value < self.limit

    def breaches(self, value: float, previous: Optional[float]) -> bool:
        """Does this sample breach the objective?  (Pure.)"""
        if self.kind == "threshold":
            return self._compare(value)
        if self.kind == "rate_of_change":
            if previous is None:
                return False
            return abs(value - previous) > self.limit
        if self.predicate is not None:
            return not self.predicate(value)
        return self._compare(value)


def default_watchdogs() -> list[SloRule]:
    """The stock rule set the chaos harness and monitor arm.

    Limits are per-tick deltas (so they scale with the sampling interval);
    the retransmit rule is the one the E14 acceptance gate watches: any
    sustained retransmission activity fires it, and a clean wire resolves
    it.
    """
    return [
        SloRule("retransmit-rate", "retransmits", kind="threshold",
                op=">", limit=0.5, severity="warning",
                for_ticks=2, clear_ticks=3),
        SloRule("drop-spike", "drops", kind="rate_of_change",
                limit=5.0, severity="warning", clear_ticks=3),
        SloRule("resolution-p99", "p99_ms", kind="threshold",
                op=">", limit=250.0, severity="critical",
                for_ticks=2, clear_ticks=3),
        SloRule("queue-backlog", "queue_depth", kind="invariant",
                op=">", limit=256.0),
    ]


def coherence_watchdogs() -> list[SloRule]:
    """SLO rules over the probe-fed ``coherence.*`` series.

    Kept separate from :func:`default_watchdogs` so existing harnesses keep
    their exact rule set; arm with ``default_watchdogs() +
    coherence_watchdogs()`` when a coherence probe is live.  Fleet scope for
    the latency-like series (their fleet aggregate is the per-host max, so
    one rule covers the worst host); host scope for lease churn, which is a
    per-replica symptom.
    """
    return [
        SloRule("invalidation-propagation-p99", "coherence.invalidation_lag",
                kind="threshold", op=">", limit=250.0, severity="critical",
                for_ticks=2, clear_ticks=3, scope="fleet"),
        SloRule("staleness-at-hit", "coherence.staleness_at_hit",
                kind="threshold", op=">", limit=5000.0, severity="warning",
                for_ticks=2, clear_ticks=3, scope="fleet"),
        SloRule("lease-churn-spike", "coherence.lease_churn",
                kind="rate_of_change", limit=50.0, severity="warning",
                clear_ticks=3),
    ]


# ------------------------------------------------------------------ alerts


@dataclass(frozen=True)
class AlertEvent:
    """One typed alert transition: a rule fired or resolved."""

    t: float
    event: str          # "fire" | "resolve"
    rule: str
    kind: str
    severity: str
    host: str
    metric: str
    value: float
    limit: float

    def to_record(self) -> dict:
        return {"kind": "alert", "t": self.t, "event": self.event,
                "rule": self.rule, "rule_kind": self.kind,
                "severity": self.severity, "host": self.host,
                "metric": self.metric, "value": self.value,
                "limit": self.limit}

    def describe(self) -> str:
        head = (f"[t={self.t:8.3f}] {self.event.upper():7s} "
                f"{self.severity:8s} {self.rule} host={self.host}")
        if self.event == "fire":
            return f"{head} {self.metric}={self.value:g} limit={self.limit:g}"
        return head


class AlertLog:
    """Bounded alert history plus the currently-active set."""

    def __init__(self, capacity: int = ALERT_LOG_CAPACITY) -> None:
        self._events: deque[AlertEvent] = deque(maxlen=capacity)
        #: (rule, host) -> the firing event, while active.
        self.active: dict[tuple[str, str], AlertEvent] = {}
        self.fired = 0
        self.resolved = 0
        self._subscribers: list[Callable[[AlertEvent], None]] = []

    def subscribe(self, callback: Callable[[AlertEvent], None]) -> None:
        """Call ``callback(event)`` on every future fire/resolve."""
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def emit(self, event: AlertEvent) -> None:
        self._events.append(event)
        key = (event.rule, event.host)
        if event.event == "fire":
            self.fired += 1
            self.active[key] = event
        else:
            self.resolved += 1
            self.active.pop(key, None)
        for callback in list(self._subscribers):
            callback(event)

    def events(self) -> list[AlertEvent]:
        return list(self._events)

    def to_records(self) -> list[dict]:
        return [event.to_record() for event in self._events]


# --------------------------------------------------------------- collector


class _RuleState:
    """Watchdog bookkeeping for one (rule, host) pair."""

    __slots__ = ("breaching", "healthy", "active", "previous")

    def __init__(self) -> None:
        self.breaching = 0
        self.healthy = 0
        self.active = False
        self.previous: Optional[float] = None


class TelemetryCollector:
    """Samples every host into time series and runs the watchdogs.

    Created via :meth:`repro.kernel.domain.Domain.enable_telemetry`; the
    stat server serves its series and alert log through ``[obs]``.
    """

    def __init__(self, domain: "Domain", interval: float = DEFAULT_INTERVAL,
                 capacity: int = DEFAULT_CAPACITY,
                 rules: Optional[list[SloRule]] = None) -> None:
        if interval <= 0:
            raise ValueError("telemetry interval must be positive")
        self.domain = domain
        self.interval = interval
        self.capacity = capacity
        self.rules: list[SloRule] = list(rules or [])
        self.alerts = AlertLog()
        self.series: dict[tuple[str, str], TimeSeries] = {}
        self.ticks = 0
        #: (host_id, source_key) -> last cumulative reading, for deltas.
        self._prev: dict[tuple[int, str], float] = {}
        #: host_id -> transaction latencies (s) since the last tick.
        self._lat_windows: dict[int, list[float]] = {}
        self._states: dict[tuple[str, str], _RuleState] = {}
        #: host name -> tick time at which the collector first found it
        #: down (an open sampling gap, closed at the first healthy tick).
        self._open_gaps: dict[str, float] = {}
        #: host name -> closed (start, end) sampling gaps, in time order.
        self._gaps: dict[str, list[tuple[float, float]]] = {}
        self._event = None
        self.parked = False
        self.enabled = True

    # ------------------------------------------------------------- control

    def start(self) -> None:
        """Arm (or re-arm, after parking) the sample tick."""
        if self._event is None:
            self.parked = False
            self._event = self.domain.engine.schedule(self.interval,
                                                      self._tick)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # ------------------------------------------------------- kernel hooks

    def observe_txn(self, host: "Host", seconds: float) -> None:
        """Hot-path hook: one completed transaction's latency.

        Called by the kernel per completed Send; must stay cheap.  The
        window is bounded so a collector armed with a huge interval (the
        E15 hook-cost measurement) cannot grow without limit.
        """
        window = self._lat_windows.get(host.host_id)
        if window is None:
            window = self._lat_windows[host.host_id] = []
        if len(window) < LATENCY_WINDOW_MAX:
            window.append(seconds)

    # ------------------------------------------------------------ sampling

    def series_for(self, host: str, metric: str) -> Optional[TimeSeries]:
        return self.series.get((host, metric))

    def gaps_for(self, host: str) -> list[dict]:
        """Sampling gaps for ``host``: closed ones plus any still open.

        Each gap is ``{"start": t, "end": t-or-None}`` in tick time; ``end``
        is None while the host is still down (no healthy tick yet).  Gaps
        are a property of the *host* (sampling stopped wholesale), so every
        one of its series carries the same list.
        """
        gaps = [{"start": start, "end": end}
                for start, end in self._gaps.get(host, ())]
        open_start = self._open_gaps.get(host)
        if open_start is not None:
            gaps.append({"start": open_start, "end": None})
        return gaps

    def hosts_sampled(self) -> list[str]:
        return sorted({host for host, __ in self.series if host != FLEET})

    def _record(self, host: str, metric: str, t: float,
                value: float) -> None:
        key = (host, metric)
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = TimeSeries(host, metric,
                                                   self.capacity)
        series.record(t, float(value))

    def _delta(self, host_id: int, source: str, current: float) -> float:
        """Per-tick delta of a cumulative counter (restart-safe: a counter
        reset by a host restart clamps to zero rather than going negative).
        """
        key = (host_id, source)
        previous = self._prev.get(key, 0.0)
        self._prev[key] = current
        return current - previous if current >= previous else current

    @staticmethod
    def _p99_ms(window: list[float]) -> float:
        ordered = sorted(window)
        index = max(0, int(0.99 * len(ordered)) - (len(ordered) >= 100))
        index = min(index, len(ordered) - 1)
        return ordered[index] * 1000.0

    def _sample_host(self, host: "Host", t: float) -> dict[str, float]:
        domain = self.domain
        counters = host.counters
        cache = domain.name_caches.get(host.host_id)
        sample: dict[str, float] = {
            "resolutions": self._delta(
                host.host_id, "ipc.transactions",
                counters.get("ipc.transactions", 0)),
            "cache_hits": self._delta(
                host.host_id, "cache.hits",
                cache.stats.hits if cache is not None else 0),
            "cache_misses": self._delta(
                host.host_id, "cache.misses",
                cache.stats.misses if cache is not None else 0),
            "retransmits": self._delta(
                host.host_id, "ipc.retransmits",
                counters.get("ipc.retransmits", 0)),
            "drops": self._delta(
                host.host_id, "net.drops",
                domain.metrics.count(f"net.drops_from.{host.host_id}")),
            "queue_depth": float(
                sum(len(proc.msg_queue) for proc in host.processes.values())
                + len(host._outstanding)),
        }
        window = self._lat_windows.pop(host.host_id, None)
        if window:
            sample["p99_ms"] = self._p99_ms(window)
        probe = getattr(domain, "coherence", None)
        if probe is not None:
            sample.update(probe.drain_tick(host.name))
        return sample

    def _tick(self) -> None:
        t = self.domain.engine.now
        fleet_totals: dict[str, float] = {}
        fleet_maxima: dict[str, float] = {}
        for host in sorted(self.domain.hosts.values(),
                           key=lambda h: h.host_id):
            if host.crashed:
                # A down machine produces no samples.  The silence alone is
                # ambiguous to a reader of the ring buffer (idle vs dead),
                # so the gap is tracked explicitly: opened at the first tick
                # that finds the host down, closed at the first healthy one,
                # and exported on every one of the host's series.
                if host.name not in self._open_gaps:
                    self._open_gaps[host.name] = t
                continue
            gap_start = self._open_gaps.pop(host.name, None)
            if gap_start is not None:
                self._gaps.setdefault(host.name, []).append((gap_start, t))
            sample = self._sample_host(host, t)
            for metric, value in sample.items():
                self._record(host.name, metric, t, value)
                if metric in FLEET_MAX_METRICS:
                    fleet_maxima[metric] = max(
                        fleet_maxima.get(metric, value), value)
                else:
                    fleet_totals[metric] = fleet_totals.get(metric, 0.0) \
                        + value
            self._evaluate(host.name, sample)
        fleet_totals.update(fleet_maxima)
        for metric, value in fleet_totals.items():
            self._record(FLEET, metric, t, value)
        self._evaluate(FLEET, fleet_totals)
        self.ticks += 1
        engine = self.domain.engine
        if engine.pending == 0:
            # Quiesced: nothing left to watch.  Parking (instead of
            # rescheduling forever) is what lets domain.run() drain.
            self._event = None
            self.parked = True
            return
        self._event = engine.schedule(self.interval, self._tick)

    # ----------------------------------------------------------- watchdogs

    def _evaluate(self, subject: str, sample: dict[str, float]) -> None:
        t = self.domain.engine.now
        is_fleet = subject == FLEET
        for rule in self.rules:
            if (rule.scope == "fleet") != is_fleet:
                continue
            key = (rule.name, subject)
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _RuleState()
            value = sample.get(rule.metric)
            if value is None:
                breach = False          # no reading this tick = healthy
            else:
                breach = rule.breaches(value, state.previous)
                state.previous = value
            if breach:
                state.breaching += 1
                state.healthy = 0
                if not state.active and state.breaching >= rule.for_ticks:
                    state.active = True
                    self.alerts.emit(AlertEvent(
                        t=t, event="fire", rule=rule.name, kind=rule.kind,
                        severity=rule.severity, host=subject,
                        metric=rule.metric, value=float(value),
                        limit=rule.limit))
            else:
                state.healthy += 1
                state.breaching = 0
                if state.active and state.healthy >= rule.clear_ticks:
                    state.active = False
                    self.alerts.emit(AlertEvent(
                        t=t, event="resolve", rule=rule.name,
                        kind=rule.kind, severity=rule.severity,
                        host=subject, metric=rule.metric,
                        value=float(value) if value is not None else 0.0,
                        limit=rule.limit))

    # ---------------------------------------------------------- summaries

    def summary(self, host: str, metric: str) -> Optional[dict]:
        """min/mean/max/last over one series (None when never sampled)."""
        series = self.series.get((host, metric))
        if series is None or not len(series):
            return None
        values = series.values()
        return {"host": host, "metric": metric, "samples": len(values),
                "min": min(values), "mean": sum(values) / len(values),
                "max": max(values), "last": values[-1]}
