"""Observability: span tracing, a tagged metrics registry, JSONL export.

The paper's defining mechanism -- left-to-right name mapping with
*forwarding* of partially interpreted names between servers (Sec. 4-5) --
makes every resolution a multi-server graph walk.  This package makes those
walks visible:

- :mod:`repro.obs.span` -- ``Span``/``SpanContext`` trees.  The context is
  carried on kernel messages, so ``Send``/``Forward``/``Reply`` propagate
  causality across hops automatically.
- :mod:`repro.obs.registry` -- tagged counters, gauges, and fixed-bucket
  histograms with p99.
- :mod:`repro.obs.export` -- JSONL exporters and readers.
- :mod:`repro.obs.report` -- ``python -m repro.obs.report trace.jsonl``
  renders hop timelines, critical-path breakdowns, and a slowest-resolutions
  table.

Usage::

    from repro import Domain
    from repro.obs import Observability

    obs = Observability()
    domain = Domain(obs=obs)
    ...                      # build servers, run a workload
    obs.export_spans("trace.jsonl")
    obs.export_metrics("metrics.jsonl")

Tracing charges **zero simulated time**; a domain built with ``obs=None``
(the default) takes no observability branches at all.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.export import (
    TraceFile,
    read_spans_jsonl,
    write_metrics_jsonl,
    write_spans_jsonl,
)
from repro.obs.registry import (
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NoSamplesError,
)
from repro.obs.profile import FrameStats, Profiler
from repro.obs.span import Span, SpanContext, SpanNode, TraceCollector, build_tree


class Observability:
    """The bundle a :class:`~repro.kernel.domain.Domain` carries when
    observability is on: a span collector, a metrics registry, and a pid ->
    server-kind map used to label report output."""

    def __init__(self, spans: Optional[TraceCollector] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.spans = spans if spans is not None else TraceCollector()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.actors: Dict[int, str] = {}
        #: The domain's ring-buffer event Tracer, linked by Domain.__init__
        #: when both are present, so exports can report its drop count.
        self.tracer: Any = None
        #: Run comparability facts, linked by Domain.__init__: the rng seed
        #: and the engine (for its event count at export time).  Two trace
        #: files are only comparable if these match.
        self.run_seed: Any = None
        self.engine: Any = None

    def register_actor(self, pid: Any, kind: str) -> None:
        """Label a process (by pid) with its server kind for reports."""
        self.actors[int(getattr(pid, "value", pid))] = kind

    def export_meta(self) -> dict:
        """Run-level metadata for span exports.

        Carries everything needed to judge whether two trace files are
        comparable: the rng seed, the engine's event count at export time,
        and (when a ring-buffer tracer is attached) its drop count.
        """
        meta: dict = {}
        if self.run_seed is not None:
            meta["seed"] = self.run_seed
        if self.engine is not None:
            meta["events_processed"] = int(self.engine.events_processed)
        if self.tracer is not None:
            meta["dropped_events"] = int(getattr(self.tracer, "dropped", 0))
            meta["event_limit"] = getattr(self.tracer, "limit", None)
        return meta

    def export_spans(self, path: str | Path) -> int:
        return write_spans_jsonl(self.spans, path, actors=self.actors,
                                 meta=self.export_meta())

    def export_metrics(self, path: str | Path) -> int:
        return write_metrics_jsonl(self.registry, path)


__all__ = [
    "Observability",
    "Profiler",
    "FrameStats",
    "Span",
    "SpanContext",
    "SpanNode",
    "TraceCollector",
    "build_tree",
    "MetricsRegistry",
    "MetricsError",
    "NoSamplesError",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
    "TraceFile",
    "read_spans_jsonl",
    "write_spans_jsonl",
    "write_metrics_jsonl",
]
