"""Network substrate: frames, a shared-bus Ethernet model, and timing.

The paper's cluster is SUN workstations on a 3 Mbit (later 10 Mbit) Ethernet.
This package models that wire:

- :mod:`repro.net.latency` -- every timing constant in the reproduction, with
  the derivations that calibrate them against the paper's published numbers.
- :mod:`repro.net.packet` -- frames and addressing (unicast / broadcast /
  multicast group).
- :mod:`repro.net.ethernet` -- the shared bus: serialized transmissions,
  per-host delivery callbacks, broadcast and group delivery, traffic stats.
- :mod:`repro.net.wire` -- a binary wire encoding for kernel packets, used by
  the asyncio transport and by tests that pin the 32-byte message format.
- :mod:`repro.net.asyncio_transport` -- a real UDP/loopback transport that
  runs the same kernel protocol over sockets.
"""

from repro.net.ethernet import Ethernet
from repro.net.latency import LatencyModel, STANDARD_3MBIT, STANDARD_10MBIT
from repro.net.packet import BROADCAST, Frame, GroupAddress

__all__ = [
    "Ethernet",
    "LatencyModel",
    "STANDARD_3MBIT",
    "STANDARD_10MBIT",
    "Frame",
    "BROADCAST",
    "GroupAddress",
]
