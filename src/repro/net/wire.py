"""Binary wire encoding for kernel packets.

Used by the asyncio/UDP transport (and by tests that pin the format).  The
layout is a practical tagged serialization:

    magic "VK" | kind u8 | src_pid u32 | dst_pid u32 | txn u64
    | flags u8 | [message: code u16 | fields | segment u32+bytes
    | segment_buffer u16] | info fields

Field maps encode as count u8 then per-field: key (u8 length + utf8) and a
type-tagged value (i64, f64, bool, str, bytes, pid, none).  A real V kernel
packed the 32-byte short message as raw words; we carry field names for
debuggability and document the divergence -- the *simulated* cost model
always charges the paper's 32 bytes, independent of this encoding.
"""

from __future__ import annotations

import struct

from repro.kernel.messages import Message, Packet, PacketKind
from repro.kernel.pids import Pid

MAGIC = b"VK"

_KINDS = list(PacketKind)
_KIND_INDEX = {kind: index for index, kind in enumerate(_KINDS)}

_HEADER = struct.Struct(">2sBIIQB")
_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_FLAG_HAS_MESSAGE = 0x01


class WireError(ValueError):
    """Malformed or unencodable packet."""


# ---------------------------------------------------------------- field maps


def _encode_int(out: bytearray, value) -> None:
    if not -(1 << 63) <= value < (1 << 63):
        raise WireError(f"integer field out of i64 range: {value}")
    out += b"i" + _I64.pack(value)


def _encode_str(out: bytearray, value) -> None:
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise WireError("string field too long")
    out += b"s" + _U16.pack(len(raw)) + raw


def _encode_bytes(out: bytearray, value) -> None:
    if len(value) > 0xFFFF:
        raise WireError("bytes field too long")
    out += b"b" + _U16.pack(len(value)) + bytes(value)


def _encode_float(out: bytearray, value) -> None:
    out += b"f" + _F64.pack(value)


#: Exact-type dispatch for the common field types; the isinstance chain in
#: ``_encode_value`` remains the fallback for subclasses (IntEnum values,
#: str/bytes subclasses), so the accepted inputs -- and the bytes produced --
#: are unchanged.
_VALUE_ENCODERS = {
    type(None): lambda out, value: out.extend(b"N"),
    bool: lambda out, value: out.extend(b"B\x01" if value else b"B\x00"),
    Pid: lambda out, value: out.extend(b"P" + _U32.pack(value.value)),
    int: _encode_int,
    float: _encode_float,
    str: _encode_str,
    bytes: _encode_bytes,
    bytearray: _encode_bytes,
}


def _encode_value(out: bytearray, value) -> None:
    encoder = _VALUE_ENCODERS.get(type(value))
    if encoder is not None:
        encoder(out, value)
    elif isinstance(value, bool):
        out += b"B\x01" if value else b"B\x00"
    elif isinstance(value, Pid):
        out += b"P" + _U32.pack(value.value)
    elif isinstance(value, int):
        _encode_int(out, value)
    elif isinstance(value, float):
        _encode_float(out, value)
    elif isinstance(value, str):
        _encode_str(out, value)
    elif isinstance(value, (bytes, bytearray)):
        _encode_bytes(out, value)
    else:
        raise WireError(
            f"field value of type {type(value).__name__} is not wire-encodable "
            "(only the discrete-event backend can carry rich Python values)")


def _decode_value(data: bytes, offset: int):
    tag = data[offset : offset + 1]
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"B":
        return bool(data[offset]), offset + 1
    if tag == b"P":
        (raw,) = _U32.unpack_from(data, offset)
        return Pid(raw), offset + 4
    if tag == b"i":
        (raw,) = _I64.unpack_from(data, offset)
        return raw, offset + 8
    if tag == b"f":
        (raw,) = _F64.unpack_from(data, offset)
        return raw, offset + 8
    if tag == b"s":
        (length,) = _U16.unpack_from(data, offset)
        offset += 2
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag == b"b":
        (length,) = _U16.unpack_from(data, offset)
        offset += 2
        return bytes(data[offset : offset + length]), offset + length
    raise WireError(f"unknown value tag {tag!r}")


#: Length-prefixed UTF-8 of every field name seen so far.  Field names are
#: program identifiers ("service", "waiter", ...), so the memo stays tiny
#: while saving an encode + pack per field on every packet.
_KEY_CACHE: dict[str, bytes] = {}


def _encode_key(key: str) -> bytes:
    raw = key.encode("utf-8")
    if len(raw) > 0xFF:
        raise WireError(f"field name too long: {key!r}")
    encoded = _U8.pack(len(raw)) + raw
    _KEY_CACHE[key] = encoded
    return encoded


def _encode_fields(out: bytearray, fields: dict) -> None:
    if not fields:
        out += b"\x00"
        return
    if len(fields) > 0xFF:
        raise WireError("too many fields")
    key_cache = _KEY_CACHE
    out += _U8.pack(len(fields))
    for key in sorted(fields):
        encoded = key_cache.get(key)
        out += encoded if encoded is not None else _encode_key(key)
        _encode_value(out, fields[key])


def _decode_fields(data: bytes, offset: int) -> tuple[dict, int]:
    count = data[offset]
    offset += 1
    if not count:
        return {}, offset
    fields = {}
    for __ in range(count):
        (klen,) = _U8.unpack_from(data, offset)
        offset += 1
        key = data[offset : offset + klen].decode("utf-8")
        offset += klen
        fields[key], offset = _decode_value(data, offset)
    return fields, offset


# ------------------------------------------------------------------- packets


def encode_packet(packet: Packet) -> bytes:
    flags = _FLAG_HAS_MESSAGE if packet.message is not None else 0
    out = bytearray(_HEADER.pack(
        MAGIC, _KIND_INDEX[packet.kind], packet.src_pid.value,
        packet.dst_pid.value if packet.dst_pid is not None else 0,
        packet.txn_id, flags))
    if packet.message is not None:
        message = packet.message
        out += _U16.pack(message.code)
        _encode_fields(out, message.fields)
        segment = message.segment or b""
        if len(segment) > 0xFFFFFFFF:
            raise WireError("segment too long")
        out += _U32.pack(len(segment)) + segment
        out += _U16.pack(message.segment_buffer)
    _encode_fields(out, packet.info)
    return bytes(out)


def decode_packet(data: bytes) -> Packet:
    if len(data) < _HEADER.size:
        raise WireError("short packet")
    magic, kind_index, src, dst, txn, flags = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if kind_index >= len(_KINDS):
        raise WireError(f"unknown packet kind {kind_index}")
    offset = _HEADER.size
    message = None
    if flags & _FLAG_HAS_MESSAGE:
        (code,) = _U16.unpack_from(data, offset)
        offset += 2
        fields, offset = _decode_fields(data, offset)
        (seg_len,) = _U32.unpack_from(data, offset)
        offset += 4
        segment = bytes(data[offset : offset + seg_len]) if seg_len else None
        offset += seg_len
        (seg_buffer,) = _U16.unpack_from(data, offset)
        offset += 2
        message = Message(code=code, fields=fields, segment=segment,
                          segment_buffer=seg_buffer)
    info, offset = _decode_fields(data, offset)
    if offset != len(data):
        raise WireError(f"{len(data) - offset} trailing bytes")
    return Packet(kind=_KINDS[kind_index], src_pid=Pid(src),
                  dst_pid=Pid(dst) if dst else None, txn_id=txn,
                  message=message, info=info)
