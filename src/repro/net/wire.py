"""Binary wire encoding for kernel packets.

Used by the asyncio/UDP transport (and by tests that pin the format).  The
layout is a practical tagged serialization:

    magic "VK" | kind u8 | src_pid u32 | dst_pid u32 | txn u64
    | flags u8 | [message: code u16 | fields | segment u32+bytes
    | segment_buffer u16] | info fields

Field maps encode as count u8 then per-field: key (u8 length + utf8) and a
type-tagged value (i64, f64, bool, str, bytes, pid, none).  A real V kernel
packed the 32-byte short message as raw words; we carry field names for
debuggability and document the divergence -- the *simulated* cost model
always charges the paper's 32 bytes, independent of this encoding.
"""

from __future__ import annotations

import struct

from repro.kernel.messages import Message, Packet, PacketKind
from repro.kernel.pids import Pid

MAGIC = b"VK"

_KINDS = list(PacketKind)
_KIND_INDEX = {kind: index for index, kind in enumerate(_KINDS)}

_HEADER = struct.Struct(">2sBIIQB")
_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_FLAG_HAS_MESSAGE = 0x01


class WireError(ValueError):
    """Malformed or unencodable packet."""


# ---------------------------------------------------------------- field maps


def _encode_value(out: bytearray, value) -> None:
    if value is None:
        out += b"N"
    elif isinstance(value, bool):
        out += b"B" + _U8.pack(1 if value else 0)
    elif isinstance(value, Pid):
        out += b"P" + _U32.pack(value.value)
    elif isinstance(value, int):
        if not -(1 << 63) <= value < (1 << 63):
            raise WireError(f"integer field out of i64 range: {value}")
        out += b"i" + _I64.pack(value)
    elif isinstance(value, float):
        out += b"f" + _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise WireError("string field too long")
        out += b"s" + _U16.pack(len(raw)) + raw
    elif isinstance(value, (bytes, bytearray)):
        if len(value) > 0xFFFF:
            raise WireError("bytes field too long")
        out += b"b" + _U16.pack(len(value)) + bytes(value)
    else:
        raise WireError(
            f"field value of type {type(value).__name__} is not wire-encodable "
            "(only the discrete-event backend can carry rich Python values)")


def _decode_value(data: bytes, offset: int):
    tag = data[offset : offset + 1]
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"B":
        return bool(data[offset]), offset + 1
    if tag == b"P":
        (raw,) = _U32.unpack_from(data, offset)
        return Pid(raw), offset + 4
    if tag == b"i":
        (raw,) = _I64.unpack_from(data, offset)
        return raw, offset + 8
    if tag == b"f":
        (raw,) = _F64.unpack_from(data, offset)
        return raw, offset + 8
    if tag == b"s":
        (length,) = _U16.unpack_from(data, offset)
        offset += 2
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag == b"b":
        (length,) = _U16.unpack_from(data, offset)
        offset += 2
        return bytes(data[offset : offset + length]), offset + length
    raise WireError(f"unknown value tag {tag!r}")


def _encode_fields(out: bytearray, fields: dict) -> None:
    if len(fields) > 0xFF:
        raise WireError("too many fields")
    out += _U8.pack(len(fields))
    for key in sorted(fields):
        raw = key.encode("utf-8")
        if len(raw) > 0xFF:
            raise WireError(f"field name too long: {key!r}")
        out += _U8.pack(len(raw)) + raw
        _encode_value(out, fields[key])


def _decode_fields(data: bytes, offset: int) -> tuple[dict, int]:
    (count,) = _U8.unpack_from(data, offset)
    offset += 1
    fields = {}
    for __ in range(count):
        (klen,) = _U8.unpack_from(data, offset)
        offset += 1
        key = data[offset : offset + klen].decode("utf-8")
        offset += klen
        fields[key], offset = _decode_value(data, offset)
    return fields, offset


# ------------------------------------------------------------------- packets


def encode_packet(packet: Packet) -> bytes:
    flags = _FLAG_HAS_MESSAGE if packet.message is not None else 0
    out = bytearray(_HEADER.pack(
        MAGIC, _KIND_INDEX[packet.kind], packet.src_pid.value,
        packet.dst_pid.value if packet.dst_pid is not None else 0,
        packet.txn_id, flags))
    if packet.message is not None:
        message = packet.message
        out += _U16.pack(message.code)
        _encode_fields(out, message.fields)
        segment = message.segment or b""
        if len(segment) > 0xFFFFFFFF:
            raise WireError("segment too long")
        out += _U32.pack(len(segment)) + segment
        out += _U16.pack(message.segment_buffer)
    _encode_fields(out, packet.info)
    return bytes(out)


def decode_packet(data: bytes) -> Packet:
    if len(data) < _HEADER.size:
        raise WireError("short packet")
    magic, kind_index, src, dst, txn, flags = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if kind_index >= len(_KINDS):
        raise WireError(f"unknown packet kind {kind_index}")
    offset = _HEADER.size
    message = None
    if flags & _FLAG_HAS_MESSAGE:
        (code,) = _U16.unpack_from(data, offset)
        offset += 2
        fields, offset = _decode_fields(data, offset)
        (seg_len,) = _U32.unpack_from(data, offset)
        offset += 4
        segment = bytes(data[offset : offset + seg_len]) if seg_len else None
        offset += seg_len
        (seg_buffer,) = _U16.unpack_from(data, offset)
        offset += 2
        message = Message(code=code, fields=fields, segment=segment,
                          segment_buffer=seg_buffer)
    info, offset = _decode_fields(data, offset)
    if offset != len(data):
        raise WireError(f"{len(data) - offset} trailing bytes")
    return Packet(kind=_KINDS[kind_index], src_pid=Pid(src),
                  dst_pid=Pid(dst) if dst else None, txn_id=txn,
                  message=message, info=info)
