"""The shared-bus Ethernet model.

Transmissions serialize on the bus: a frame occupies the wire for its
transmission time (from the :class:`~repro.net.latency.LatencyModel`), and a
frame offered while the bus is busy waits its turn.  Collisions are not
modelled -- the paper's measurements are uncontended -- but serialization
means saturating workloads (E2, E11) see correct queueing behaviour.

Delivery is by callback per attached host.  Broadcast reaches every attached
host; multicast reaches exactly the members of the destination group.  The
distinction matters for E10: broadcast name lookup interrupts every host on
the wire, multicast only the interested ones.

Fault injection hooks: links can be taken down per host, an arbitrary
drop predicate supports network partitions, and a seeded
:class:`~repro.net.latency.WireFaultModel` injects probabilistic per-frame
drop/duplicate/delay faults (``set_fault_model``) -- the substrate the
kernel's retransmission protocol and the E14 loss sweep are measured
against.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.latency import LatencyModel, WireFaultModel
from repro.net.packet import BROADCAST, Frame, GroupAddress
from repro.obs.registry import DEFAULT_BYTES_BUCKETS
from repro.sim.engine import Engine
from repro.sim.metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

DeliverFn = Callable[[Frame], None]


class NetworkError(RuntimeError):
    """Raised on misconfiguration (duplicate attach, unknown host, ...)."""


class Ethernet:
    """A single shared segment connecting all hosts in a V domain."""

    def __init__(
        self,
        engine: Engine,
        latency: LatencyModel,
        metrics: Metrics | None = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.engine = engine
        self.latency = latency
        self.metrics = metrics if metrics is not None else Metrics()
        self.obs = obs
        self._interfaces: dict[int, DeliverFn] = {}
        self._link_up: dict[int, bool] = {}
        self._groups: dict[int, set[int]] = {}
        self._busy_until = 0.0
        self._drop_predicate: Optional[Callable[[Frame, int], bool]] = None
        self._faults: Optional[WireFaultModel] = None
        self._fault_rng: Optional[random.Random] = None

    # ------------------------------------------------------------------ hosts

    def attach(self, host_id: int, deliver: DeliverFn) -> None:
        """Connect a host's receive callback to the segment."""
        if host_id in self._interfaces:
            raise NetworkError(f"host {host_id} already attached")
        self._interfaces[host_id] = deliver
        self._link_up[host_id] = True

    def detach(self, host_id: int) -> None:
        """Remove a host entirely (e.g. permanent failure)."""
        self._interfaces.pop(host_id, None)
        self._link_up.pop(host_id, None)
        for members in self._groups.values():
            members.discard(host_id)

    def attached_hosts(self) -> list[int]:
        return sorted(self._interfaces)

    def is_attached(self, host_id: int) -> bool:
        return host_id in self._interfaces

    def set_link(self, host_id: int, up: bool) -> None:
        """Take a host's link down/up without forgetting its attachment."""
        if host_id not in self._interfaces:
            raise NetworkError(f"host {host_id} is not attached")
        self._link_up[host_id] = up

    def link_is_up(self, host_id: int) -> bool:
        return self._link_up.get(host_id, False)

    def set_drop_predicate(
        self, predicate: Optional[Callable[[Frame, int], bool]]
    ) -> None:
        """Install a partition rule: drop frame if ``predicate(frame, dst_host)``."""
        self._drop_predicate = predicate

    def set_fault_model(self, faults: Optional[WireFaultModel],
                        rng: Optional[random.Random] = None) -> None:
        """Install (or clear, with None) probabilistic per-frame faults.

        ``rng`` must be a seeded stream (normally
        ``domain.rng.stream("net.faults")``) so runs stay deterministic; it
        is required whenever ``faults`` can actually fire.
        """
        if faults is not None and not faults.is_null and rng is None:
            raise NetworkError("a fault model with nonzero rates needs a "
                               "seeded rng stream")
        self._faults = faults
        if rng is not None:
            self._fault_rng = rng

    @property
    def fault_model(self) -> Optional[WireFaultModel]:
        return self._faults

    # ----------------------------------------------------------------- groups

    def join_group(self, host_id: int, group: GroupAddress) -> None:
        if host_id not in self._interfaces:
            raise NetworkError(f"host {host_id} is not attached")
        self._groups.setdefault(group.group_id, set()).add(host_id)

    def leave_group(self, host_id: int, group: GroupAddress) -> None:
        members = self._groups.get(group.group_id)
        if members is not None:
            members.discard(host_id)

    def group_members(self, group: GroupAddress) -> set[int]:
        return set(self._groups.get(group.group_id, set()))

    # ------------------------------------------------------------- transmit

    def transmit(self, frame: Frame) -> float:
        """Offer ``frame`` to the bus; returns its arrival time.

        The frame is delivered by callback at the arrival instant.  A frame
        from a host whose link is down is silently lost (the sender finds out
        the way real senders do: by timeout at a higher layer).
        """
        now = self.engine.now
        start = max(now, self._busy_until)
        tx_time = self.latency.wire_time(frame.payload_bytes)
        arrival = start + tx_time
        self._busy_until = arrival

        self.metrics.incr("net.frames")
        self.metrics.incr("net.bytes", frame.payload_bytes)
        if frame.is_broadcast:
            self.metrics.incr("net.broadcast_frames")
        elif frame.is_multicast:
            self.metrics.incr("net.multicast_frames")

        if self.obs is not None:
            self.obs.registry.histogram(
                "net.frame_bytes",
                buckets=DEFAULT_BYTES_BUCKETS).observe(frame.payload_bytes)
            message = getattr(frame.payload, "message", None)
            trace = getattr(message, "trace", None)
            if trace is not None:
                # Time on the wire for a traced message, including any wait
                # for the bus -- this is the "forwarding cost" leg of a
                # resolution's critical path.
                kind = getattr(frame.payload, "kind", None)
                self.obs.spans.emit(
                    "net.wire", start, arrival, parent=trace,
                    actor="ethernet",
                    kind=getattr(kind, "value", str(kind)),
                    bytes=frame.payload_bytes, src_host=frame.src_host,
                    dst=str(frame.dst), queued=start - now)

        if not self._link_up.get(frame.src_host, False):
            self.metrics.incr("net.frames_lost")
            return arrival

        self.engine.schedule_at(arrival, self._deliver, frame)
        return arrival

    def _deliver(self, frame: Frame) -> None:
        faults = self._faults
        inject = faults is not None and not faults.is_null
        for host_id in self._destinations(frame):
            if not self._link_up.get(host_id, False):
                self.metrics.incr("net.frames_lost")
                continue
            if self._drop_predicate is not None and self._drop_predicate(
                frame, host_id
            ):
                self.metrics.incr("net.frames_dropped")
                continue
            if not inject:
                self._deliver_one(frame, host_id)
                continue
            # Probabilistic faults, one independent draw set per
            # destination.  Destinations iterate in sorted order and the rng
            # stream is seeded, so the loss pattern is a pure function of
            # the seed and the traffic -- runs stay reproducible.
            rng = self._fault_rng
            if rng.random() < faults.drop_rate:
                self.metrics.incr("net.drops")
                # Attributed to the *sender* (its frame was lost), keyed by
                # host id like net.delivered_to -- the telemetry collector
                # samples this into each host's "drops" series.
                self.metrics.incr(f"net.drops_from.{frame.src_host}")
                continue
            self._deliver_faulted(frame, host_id, faults, rng)
            if rng.random() < faults.dup_rate:
                self.metrics.incr("net.dups")
                self._deliver_faulted(frame, host_id, faults, rng)

    def _deliver_faulted(self, frame: Frame, host_id: int,
                         faults: WireFaultModel, rng: random.Random) -> None:
        """Deliver one (possibly duplicated) copy, maybe with extra delay."""
        if faults.delay_rate > 0.0 and rng.random() < faults.delay_rate:
            extra = rng.uniform(faults.delay_min, faults.delay_max)
            self.metrics.incr("net.delayed_frames")
            if self.obs is not None:
                self.obs.registry.histogram(
                    "net.injected_delay_seconds").observe(extra)
            self.engine.schedule(extra, self._deliver_one, frame, host_id)
        else:
            self._deliver_one(frame, host_id)

    def _deliver_one(self, frame: Frame, host_id: int) -> None:
        """Hand one frame copy to one destination host, if still possible."""
        if not self._link_up.get(host_id, False):
            self.metrics.incr("net.frames_lost")
            return
        deliver = self._interfaces.get(host_id)
        if deliver is None:
            self.metrics.incr("net.frames_lost")
            return
        self.metrics.incr(f"net.delivered_to.{host_id}")
        deliver(frame)

    def _destinations(self, frame: Frame) -> list[int]:
        if frame.is_broadcast:
            return [h for h in sorted(self._interfaces) if h != frame.src_host]
        if frame.is_multicast:
            assert isinstance(frame.dst, GroupAddress)
            members = self._groups.get(frame.dst.group_id, set())
            return [h for h in sorted(members) if h != frame.src_host]
        assert isinstance(frame.dst, int)
        return [frame.dst]
