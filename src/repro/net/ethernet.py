"""The shared-bus Ethernet model.

Transmissions serialize on the bus: a frame occupies the wire for its
transmission time (from the :class:`~repro.net.latency.LatencyModel`), and a
frame offered while the bus is busy waits its turn.  Collisions are not
modelled -- the paper's measurements are uncontended -- but serialization
means saturating workloads (E2, E11) see correct queueing behaviour.

Delivery is by callback per attached host.  Broadcast reaches every attached
host; multicast reaches exactly the members of the destination group.  The
distinction matters for E10: broadcast name lookup interrupts every host on
the wire, multicast only the interested ones.

Fault injection hooks: links can be taken down per host, an arbitrary
drop predicate supports network partitions, and a seeded
:class:`~repro.net.latency.WireFaultModel` injects probabilistic per-frame
drop/duplicate/delay faults (``set_fault_model``) -- the substrate the
kernel's retransmission protocol and the E14 loss sweep are measured
against.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.latency import LatencyModel, WireFaultModel
from repro.net.packet import BROADCAST, Frame, FramePool, GroupAddress, _Broadcast
from repro.obs.registry import DEFAULT_BYTES_BUCKETS
from repro.sim.engine import Engine
from repro.sim.metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

DeliverFn = Callable[[Frame], None]


class NetworkError(RuntimeError):
    """Raised on misconfiguration (duplicate attach, unknown host, ...)."""


class Ethernet:
    """A single shared segment connecting all hosts in a V domain."""

    def __init__(
        self,
        engine: Engine,
        latency: LatencyModel,
        metrics: Metrics | None = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.engine = engine
        self.latency = latency
        self.metrics = metrics if metrics is not None else Metrics()
        self.obs = obs
        self._interfaces: dict[int, DeliverFn] = {}
        self._link_up: dict[int, bool] = {}
        #: host -> deliver callback, for hosts that are attached AND whose
        #: link is up.  Maintained by attach/detach/set_link so the per-frame
        #: path answers "can this host receive right now" with one dict get.
        self._live_iface: dict[int, DeliverFn] = {}
        self._groups: dict[int, set[int]] = {}
        self._busy_until = 0.0
        self._drop_predicate: Optional[Callable[[Frame, int], bool]] = None
        self._faults: Optional[WireFaultModel] = None
        self._fault_rng: Optional[random.Random] = None
        #: Flyweight recycling for kernel-originated frames: kernels acquire
        #: here, _deliver releases once the frame has fanned out (except
        #: under fault injection, whose delayed/duplicated copies may hold
        #: the frame past this event).
        self.frame_pool = FramePool()
        #: Pre-resolved "net.delivered_to.<host>" counters (hot path).
        self._delivered_counters: dict = {}
        #: Pre-resolved registry counters: transmit/deliver run per frame,
        #: and even the cached-by-name incr() is measurable there.  These
        #: are the registry's own Counter objects, so every other view
        #: (counter_values, telemetry, [obs]) sees the same numbers.
        registry = self.metrics.registry
        self._c_frames = registry.counter("net.frames")
        self._c_bytes = registry.counter("net.bytes")
        self._c_broadcast = registry.counter("net.broadcast_frames")
        self._c_multicast = registry.counter("net.multicast_frames")
        #: Bound once: transmit() computes one wire time per frame, and
        #: posts one delivery callback -- pre-binding skips the per-frame
        #: bound-method allocation.
        self._wire_time = latency.wire_time
        self._deliver = self._deliver
        self._deliver_one = self._deliver_one
        #: Memoized wire times keyed by payload size.  Traffic concentrates
        #: on a handful of distinct sizes (short messages plus a few segment
        #: lengths), so the cache turns a method call plus float arithmetic
        #: into one dict probe; values are exactly what wire_time returns.
        self._wire_time_cache: dict[int, float] = {}

    # ------------------------------------------------------------------ hosts

    def attach(self, host_id: int, deliver: DeliverFn) -> None:
        """Connect a host's receive callback to the segment."""
        if host_id in self._interfaces:
            raise NetworkError(f"host {host_id} already attached")
        self._interfaces[host_id] = deliver
        self._link_up[host_id] = True
        self._live_iface[host_id] = deliver

    def detach(self, host_id: int) -> None:
        """Remove a host entirely (e.g. permanent failure)."""
        self._interfaces.pop(host_id, None)
        self._link_up.pop(host_id, None)
        self._live_iface.pop(host_id, None)
        for members in self._groups.values():
            members.discard(host_id)

    def attached_hosts(self) -> list[int]:
        return sorted(self._interfaces)

    def is_attached(self, host_id: int) -> bool:
        return host_id in self._interfaces

    def set_link(self, host_id: int, up: bool) -> None:
        """Take a host's link down/up without forgetting its attachment."""
        if host_id not in self._interfaces:
            raise NetworkError(f"host {host_id} is not attached")
        self._link_up[host_id] = up
        if up:
            self._live_iface[host_id] = self._interfaces[host_id]
        else:
            self._live_iface.pop(host_id, None)

    def link_is_up(self, host_id: int) -> bool:
        return self._link_up.get(host_id, False)

    def set_drop_predicate(
        self, predicate: Optional[Callable[[Frame, int], bool]]
    ) -> None:
        """Install a partition rule: drop frame if ``predicate(frame, dst_host)``."""
        self._drop_predicate = predicate

    def set_fault_model(self, faults: Optional[WireFaultModel],
                        rng: Optional[random.Random] = None) -> None:
        """Install (or clear, with None) probabilistic per-frame faults.

        ``rng`` must be a seeded stream (normally
        ``domain.rng.stream("net.faults")``) so runs stay deterministic; it
        is required whenever ``faults`` can actually fire.
        """
        if faults is not None and not faults.is_null and rng is None:
            raise NetworkError("a fault model with nonzero rates needs a "
                               "seeded rng stream")
        self._faults = faults
        if rng is not None:
            self._fault_rng = rng

    @property
    def fault_model(self) -> Optional[WireFaultModel]:
        return self._faults

    # ----------------------------------------------------------------- groups

    def join_group(self, host_id: int, group: GroupAddress) -> None:
        if host_id not in self._interfaces:
            raise NetworkError(f"host {host_id} is not attached")
        self._groups.setdefault(group.group_id, set()).add(host_id)

    def leave_group(self, host_id: int, group: GroupAddress) -> None:
        members = self._groups.get(group.group_id)
        if members is not None:
            members.discard(host_id)

    def group_members(self, group: GroupAddress) -> set[int]:
        return set(self._groups.get(group.group_id, set()))

    # ------------------------------------------------------------- transmit

    def transmit(self, frame: Frame) -> float:
        """Offer ``frame`` to the bus; returns its arrival time.

        The frame is delivered by callback at the arrival instant.  A frame
        from a host whose link is down is silently lost (the sender finds out
        the way real senders do: by timeout at a higher layer).
        """
        # Private-attribute read: engine.now is a property, and transmit
        # runs once per frame.
        now = self.engine._now
        busy = self._busy_until
        start = now if now >= busy else busy
        payload_bytes = frame.payload_bytes
        cache = self._wire_time_cache
        wire = cache.get(payload_bytes)
        if wire is None:
            wire = cache[payload_bytes] = self._wire_time(payload_bytes)
        arrival = start + wire
        self._busy_until = arrival

        self._c_frames.value += 1
        self._c_bytes.value += payload_bytes
        dst_type = type(frame.dst)
        if dst_type is not int:
            if dst_type is _Broadcast:
                self._c_broadcast.value += 1
            elif dst_type is GroupAddress:
                self._c_multicast.value += 1

        if self.obs is not None:
            self.obs.registry.histogram(
                "net.frame_bytes",
                buckets=DEFAULT_BYTES_BUCKETS).observe(frame.payload_bytes)
            message = getattr(frame.payload, "message", None)
            trace = getattr(message, "trace", None)
            if trace is not None:
                # Time on the wire for a traced message, including any wait
                # for the bus -- this is the "forwarding cost" leg of a
                # resolution's critical path.
                kind = getattr(frame.payload, "kind", None)
                self.obs.spans.emit(
                    "net.wire", start, arrival, parent=trace,
                    actor="ethernet",
                    kind=getattr(kind, "value", str(kind)),
                    bytes=frame.payload_bytes, src_host=frame.src_host,
                    dst=str(frame.dst), queued=start - now)

        if frame.src_host not in self._live_iface:
            self.metrics.incr("net.frames_lost")
            return arrival

        self.engine.post_at(arrival, self._deliver, frame)
        return arrival

    def _deliver(self, frame: Frame) -> None:
        faults = self._faults
        inject = faults is not None and not faults.is_null
        if not inject and type(frame.dst) is int and self._drop_predicate is None:
            # Unicast on a healthy wire: the overwhelmingly common case at
            # fleet scale -- skip the destination-list build entirely
            # (_deliver_one performs the same link/attachment checks the
            # general loop would).
            self._deliver_one(frame, frame.dst)
            self.frame_pool.release(frame)
            return
        self._fan_out(frame, faults, inject)
        if not inject:
            # Fan-out is synchronous without fault injection, so the frame
            # is fully delivered here and pool frames can be recycled.
            # (Injected faults schedule delayed/dup copies that keep frame
            # references; those frames simply age out via GC as before.)
            self.frame_pool.release(frame)

    def _fan_out(self, frame: Frame, faults, inject: bool) -> None:
        for host_id in self._destinations(frame):
            if host_id not in self._live_iface:
                self.metrics.incr("net.frames_lost")
                continue
            if self._drop_predicate is not None and self._drop_predicate(
                frame, host_id
            ):
                self.metrics.incr("net.frames_dropped")
                continue
            if not inject:
                self._deliver_one(frame, host_id)
                continue
            # Probabilistic faults, one independent draw set per
            # destination.  Destinations iterate in sorted order and the rng
            # stream is seeded, so the loss pattern is a pure function of
            # the seed and the traffic -- runs stay reproducible.
            rng = self._fault_rng
            if rng.random() < faults.drop_rate:
                self.metrics.incr("net.drops")
                # Attributed to the *sender* (its frame was lost), keyed by
                # host id like net.delivered_to -- the telemetry collector
                # samples this into each host's "drops" series.
                self.metrics.incr(f"net.drops_from.{frame.src_host}")
                continue
            self._deliver_faulted(frame, host_id, faults, rng)
            if rng.random() < faults.dup_rate:
                self.metrics.incr("net.dups")
                self._deliver_faulted(frame, host_id, faults, rng)

    def _deliver_faulted(self, frame: Frame, host_id: int,
                         faults: WireFaultModel, rng: random.Random) -> None:
        """Deliver one (possibly duplicated) copy, maybe with extra delay."""
        if faults.delay_rate > 0.0 and rng.random() < faults.delay_rate:
            extra = rng.uniform(faults.delay_min, faults.delay_max)
            self.metrics.incr("net.delayed_frames")
            if self.obs is not None:
                self.obs.registry.histogram(
                    "net.injected_delay_seconds").observe(extra)
            self.engine.post(extra, self._deliver_one, frame, host_id)
        else:
            self._deliver_one(frame, host_id)

    def _deliver_one(self, frame: Frame, host_id: int) -> None:
        """Hand one frame copy to one destination host, if still possible."""
        deliver = self._live_iface.get(host_id)
        if deliver is None:
            # Detached, or attached with the link down: lost either way.
            self.metrics.incr("net.frames_lost")
            return
        counter = self._delivered_counters.get(host_id)
        if counter is None:
            counter = self.metrics.registry.counter(f"net.delivered_to.{host_id}")
            self._delivered_counters[host_id] = counter
        counter.value += 1
        deliver(frame)

    def _destinations(self, frame: Frame) -> list[int]:
        if frame.is_broadcast:
            return [h for h in sorted(self._interfaces) if h != frame.src_host]
        if frame.is_multicast:
            assert isinstance(frame.dst, GroupAddress)
            members = self._groups.get(frame.dst.group_id, set())
            return [h for h in sorted(members) if h != frame.src_host]
        assert isinstance(frame.dst, int)
        return [frame.dst]
