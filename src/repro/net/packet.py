"""Frames and addressing for the simulated Ethernet.

A frame's destination is a host id (unicast), :data:`BROADCAST`, or a
:class:`GroupAddress` (multicast).  The payload is opaque to the network --
the kernel puts :class:`repro.kernel.messages.Packet` objects in it -- but the
frame declares its payload size so the Ethernet can charge accurate wire time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Union


@dataclass(frozen=True)
class _Broadcast:
    """Singleton marker for the all-hosts destination."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "BROADCAST"


BROADCAST = _Broadcast()


@dataclass(frozen=True)
class GroupAddress:
    """A multicast group address.

    Membership is managed by :meth:`repro.net.ethernet.Ethernet.join_group`;
    delivery reaches exactly the member hosts, modelling an Ethernet
    multicast address filter (as opposed to broadcast, which interrupts every
    host on the wire -- the distinction E10 measures).
    """

    group_id: int

    def __post_init__(self) -> None:
        if self.group_id < 0:
            raise ValueError(f"group id must be non-negative (got {self.group_id})")


Destination = Union[int, _Broadcast, GroupAddress]

#: Frame ids come from a C-level counter: one is stamped per acquire, which
#: at fleet scale means one per simulated frame.
_next_frame_id = count(1).__next__


@dataclass(slots=True)
class Frame:
    """One link-level frame in flight."""

    src_host: int
    dst: Destination
    payload: Any
    payload_bytes: int
    frame_id: int = field(default_factory=_next_frame_id)
    #: True only for frames acquired from a :class:`FramePool`; the Ethernet
    #: recycles those after delivery.  Frames built directly (tests, tools)
    #: are never pooled, so references held across delivery stay valid.
    pooled: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")

    @property
    def is_broadcast(self) -> bool:
        return isinstance(self.dst, _Broadcast)

    @property
    def is_multicast(self) -> bool:
        return isinstance(self.dst, GroupAddress)

    @property
    def is_unicast(self) -> bool:
        return isinstance(self.dst, int)


class FramePool:
    """Free-list of :class:`Frame` flyweights for the kernel hot path.

    A Send/Reply round trip allocates a frame per hop; at fleet scale that
    is the dominant allocation after the engine's own events.  Kernels
    acquire frames here and the Ethernet releases them once delivered
    (fault-injection paths that retain frame references -- delayed or
    duplicated copies -- simply skip the release, and the frame is garbage
    collected as before).  Every acquire stamps a fresh ``frame_id``, so
    recycled frames are indistinguishable from newly constructed ones.
    """

    __slots__ = ("_free",)

    def __init__(self) -> None:
        self._free: list[Frame] = []

    def acquire(self, src_host: int, dst: Destination, payload: Any,
                payload_bytes: int) -> Frame:
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        free = self._free
        if free:
            frame = free.pop()
            frame.src_host = src_host
            frame.dst = dst
            frame.payload = payload
            frame.payload_bytes = payload_bytes
            frame.frame_id = _next_frame_id()
            return frame
        frame = Frame(src_host, dst, payload, payload_bytes)
        frame.pooled = True
        return frame

    def release(self, frame: Frame) -> None:
        """Return a delivered pool frame to the free list.

        Only accepts pool-owned frames; the payload reference is dropped so
        recycling never pins a delivered packet alive.
        """
        if frame.pooled:
            frame.payload = None
            self._free.append(frame)
