"""Frames and addressing for the simulated Ethernet.

A frame's destination is a host id (unicast), :data:`BROADCAST`, or a
:class:`GroupAddress` (multicast).  The payload is opaque to the network --
the kernel puts :class:`repro.kernel.messages.Packet` objects in it -- but the
frame declares its payload size so the Ethernet can charge accurate wire time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union


@dataclass(frozen=True)
class _Broadcast:
    """Singleton marker for the all-hosts destination."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "BROADCAST"


BROADCAST = _Broadcast()


@dataclass(frozen=True)
class GroupAddress:
    """A multicast group address.

    Membership is managed by :meth:`repro.net.ethernet.Ethernet.join_group`;
    delivery reaches exactly the member hosts, modelling an Ethernet
    multicast address filter (as opposed to broadcast, which interrupts every
    host on the wire -- the distinction E10 measures).
    """

    group_id: int

    def __post_init__(self) -> None:
        if self.group_id < 0:
            raise ValueError(f"group id must be non-negative (got {self.group_id})")


Destination = Union[int, _Broadcast, GroupAddress]

_frame_counter = 0


def _next_frame_id() -> int:
    global _frame_counter
    _frame_counter += 1
    return _frame_counter


@dataclass
class Frame:
    """One link-level frame in flight."""

    src_host: int
    dst: Destination
    payload: Any
    payload_bytes: int
    frame_id: int = field(default_factory=_next_frame_id)

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")

    @property
    def is_broadcast(self) -> bool:
        return isinstance(self.dst, _Broadcast)

    @property
    def is_multicast(self) -> bool:
        return isinstance(self.dst, GroupAddress)

    @property
    def is_unicast(self) -> bool:
        return isinstance(self.dst, int)
