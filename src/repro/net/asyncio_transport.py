"""A real transport: the V kernel protocol over asyncio UDP sockets.

The discrete-event backend answers the paper's *quantitative* questions; this
backend answers the "is it a real protocol?" one.  Every host is a UDP
endpoint on 127.0.0.1, every kernel packet crosses a socket in the
:mod:`repro.net.wire` encoding, and -- the point of the whole effects design
-- the *same server generators* (file server, prefix server, mail server,
...) run unmodified: ``AsyncHost`` is simply a second interpreter for the
effect vocabulary of :mod:`repro.kernel.ipc`.

Supported effects: Send, Receive, Reply, Forward, MoveTo, MoveFrom, SetPid,
GetPid, Delay, Now, MyPid, Spawn, JoinGroup/LeaveGroup/GroupSend (group sends
fan out as unicast datagrams; membership is shared in-process, standing in
for the kernel group protocol).  Known divergences from the DES backend:
timing is wall-clock, there is no probe protocol (plain reply timeouts), and
message fields must be wire-encodable.

Example (see ``examples/asyncio_demo.py``)::

    domain = AsyncDomain()
    ws = await domain.create_host("ws")
    fs = await domain.create_host("fs")
    fs.spawn(VFileServer(user="mann").body(), "fileserver")
    ...
    await domain.run_until_idle()
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from typing import Any, Optional

from repro.kernel import ipc
from repro.kernel.errors import IllegalEffect, KernelError, NotAwaitingReply
from repro.kernel.messages import Message, Packet, PacketKind, ReplyCode
from repro.kernel.pids import Pid, PidAllocator
from repro.kernel.services import Scope, ServiceRegistry
from repro.net.wire import decode_packet, encode_packet
from repro.sim.process import Task, TaskFailure

#: How long a Send waits for a reply before failing with TIMEOUT (seconds,
#: wall clock).  Generous: loopback RTTs are microseconds.
REPLY_TIMEOUT = 5.0
GETPID_TIMEOUT = 0.25
MOVE_TIMEOUT = 5.0

_txn_counter = itertools.count(1)
_waiter_counter = itertools.count(1)


class _Endpoint(asyncio.DatagramProtocol):
    def __init__(self, host: "AsyncHost") -> None:
        self.host = host

    def datagram_received(self, data: bytes, addr) -> None:
        self.host._on_datagram(data)


class _AsyncProcess:
    def __init__(self, pid: Pid, task: Task, name: str) -> None:
        self.pid = pid
        self.task = task
        self.name = name
        self.queue: deque[ipc.Delivery] = deque()
        self.arrival = asyncio.Event()
        self.unreplied: dict[int, ipc.Delivery] = {}
        self.alive = True


class AsyncHost:
    """One machine: kernel tables + an asyncio effect interpreter."""

    def __init__(self, domain: "AsyncDomain", host_id: int, name: str) -> None:
        self.domain = domain
        self.host_id = host_id
        self.name = name
        self.allocator = PidAllocator(host_id)
        self.registry = ServiceRegistry()
        self.processes: dict[int, _AsyncProcess] = {}
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.address: Optional[tuple[str, int]] = None
        #: txn -> future resolved with the reply Message.
        self._reply_waiters: dict[int, asyncio.Future] = {}
        #: waiter id -> future resolved with a Pid (GetPid broadcast).
        self._getpid_waiters: dict[int, asyncio.Future] = {}
        #: txn of a Send in flight -> exposed Segment (for moves).
        self._exposed: dict[int, ipc.Segment] = {}
        #: move txn -> future.
        self._move_waiters: dict[int, asyncio.Future] = {}
        self._tasks: set[asyncio.Task] = set()

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self.transport, __ = await loop.create_datagram_endpoint(
            lambda: _Endpoint(self), local_addr=("127.0.0.1", 0))
        self.address = self.transport.get_extra_info("sockname")[:2]

    def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        if self.transport is not None:
            self.transport.close()

    # ------------------------------------------------------------- processes

    def spawn(self, body, name: str = "process") -> Pid:
        pid = self.allocator.allocate()
        if callable(body) and not hasattr(body, "send"):
            body = body(pid)
        proc = _AsyncProcess(pid, Task(body, name=f"{self.name}/{name}"), name)
        self.processes[pid.local_id] = proc
        task = asyncio.get_running_loop().create_task(self._run(proc))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return pid

    async def _run(self, proc: _AsyncProcess) -> None:
        value: Any = None
        exc: BaseException | None = None
        first = True
        try:
            while True:
                try:
                    if first:
                        finished, effect = proc.task.start()
                        first = False
                    elif exc is not None:
                        err, exc = exc, None
                        finished, effect = proc.task.throw(err)
                    else:
                        finished, effect = proc.task.resume(value)
                except TaskFailure as failure:
                    self.domain.failures.append((proc.task.name,
                                                 failure.original))
                    break
                if finished:
                    break
                try:
                    value = await self._perform(proc, effect)
                except KernelError as err:
                    value, exc = None, err
        finally:
            self._terminate(proc)

    def _terminate(self, proc: _AsyncProcess) -> None:
        if not proc.alive:
            return
        proc.alive = False
        for delivery in list(proc.queue) + list(proc.unreplied.values()):
            self._send_reply_packet(
                proc.pid, delivery, Message.reply(ReplyCode.NONEXISTENT_PROCESS))
        proc.queue.clear()
        proc.unreplied.clear()
        self.registry.remove_pid(proc.pid)
        self.domain.groups.pop_pid(proc.pid)
        self.processes.pop(proc.pid.local_id, None)
        self.domain.process_exited()

    def find_process(self, pid: Pid) -> Optional[_AsyncProcess]:
        proc = self.processes.get(pid.local_id)
        if proc is not None and proc.pid == pid and proc.alive:
            return proc
        return None

    # --------------------------------------------------------------- effects

    async def _perform(self, proc: _AsyncProcess, effect: Any) -> Any:
        if isinstance(effect, ipc.Send):
            return await self._do_send(proc, effect.dst, effect.message,
                                       effect.expose)
        if isinstance(effect, ipc.Receive):
            return await self._do_receive(proc, effect.from_pid)
        if isinstance(effect, ipc.Reply):
            return self._do_reply(proc, effect)
        if isinstance(effect, ipc.Forward):
            return self._do_forward(proc, effect)
        if isinstance(effect, ipc.MoveFrom):
            return await self._do_move(proc, effect.src, "from",
                                       effect.offset, effect.nbytes, None)
        if isinstance(effect, ipc.MoveTo):
            return await self._do_move(proc, effect.dst, "to",
                                       effect.offset, len(effect.data),
                                       effect.data)
        if isinstance(effect, ipc.Delay):
            await asyncio.sleep(effect.seconds)
            return None
        if isinstance(effect, ipc.Now):
            return asyncio.get_running_loop().time()
        if isinstance(effect, ipc.MyPid):
            return proc.pid
        if isinstance(effect, ipc.SetPid):
            self.registry.set_pid(effect.service, proc.pid, effect.scope)
            return None
        if isinstance(effect, ipc.GetPid):
            return await self._do_get_pid(effect.service, effect.scope)
        if isinstance(effect, ipc.Spawn):
            return self.spawn(effect.body, effect.name)
        if isinstance(effect, ipc.JoinGroup):
            self.domain.groups.join(effect.group_id, proc.pid)
            return None
        if isinstance(effect, ipc.LeaveGroup):
            self.domain.groups.leave(effect.group_id, proc.pid)
            return None
        if isinstance(effect, ipc.GroupSend):
            return await self._do_group_send(proc, effect)
        if isinstance(effect, ipc.Annotate):
            # Span annotations are simulation-side observability; the socket
            # transport carries no trace contexts, so this is a no-op.
            return None
        if isinstance(effect, (ipc.ProfileEnter, ipc.ProfileExit)):
            # Attribution frames profile the discrete-event clock; there is
            # no simulated time to charge here, so they are no-ops too.
            return None
        if isinstance(effect, ipc.Exit):
            raise asyncio.CancelledError
        raise IllegalEffect(f"{effect!r} is not a kernel effect")

    # ------------------------------------------------------------------ send

    def _sendto(self, data: bytes, host_id: int) -> None:
        address = self.domain.address_of(host_id)
        if address is not None and self.transport is not None:
            self.transport.sendto(data, address)

    def _send_packet(self, packet: Packet, host_id: int) -> None:
        self._sendto(encode_packet(packet), host_id)

    async def _do_send(self, proc: _AsyncProcess, dst: Pid, message: Message,
                       expose: Optional[ipc.Segment]) -> Message:
        if dst.is_logical_service:
            raise IllegalEffect(f"cannot Send to logical pid {dst!r}")
        txn = next(_txn_counter)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._reply_waiters[txn] = future
        if expose is not None:
            self._exposed[txn] = expose
        packet = Packet(PacketKind.REQUEST, src_pid=proc.pid, dst_pid=dst,
                        txn_id=txn, message=message)
        self._send_packet(packet, dst.logical_host)
        try:
            return await asyncio.wait_for(future, REPLY_TIMEOUT)
        except asyncio.TimeoutError:
            return Message.reply(ReplyCode.TIMEOUT)
        finally:
            self._reply_waiters.pop(txn, None)
            self._exposed.pop(txn, None)

    async def _do_receive(self, proc: _AsyncProcess,
                          from_pid: Optional[Pid]) -> ipc.Delivery:
        while True:
            for index, delivery in enumerate(proc.queue):
                if from_pid is None or delivery.sender == from_pid:
                    del proc.queue[index]
                    proc.unreplied[delivery.txn_id] = delivery
                    return delivery
            proc.arrival.clear()
            await proc.arrival.wait()

    def _find_unreplied(self, proc: _AsyncProcess, to: Pid) -> ipc.Delivery:
        for txn_id, delivery in proc.unreplied.items():
            if delivery.sender == to:
                return proc.unreplied.pop(txn_id)
        raise NotAwaitingReply(f"{to!r} is not awaiting a reply from {proc.name!r}")

    def _do_reply(self, proc: _AsyncProcess, effect: ipc.Reply) -> None:
        delivery = self._find_unreplied(proc, effect.to)
        self._send_reply_packet(proc.pid, delivery, effect.message)
        return None

    def _send_reply_packet(self, from_pid: Pid, delivery: ipc.Delivery,
                           message: Message) -> None:
        packet = Packet(PacketKind.REPLY, src_pid=from_pid,
                        dst_pid=delivery.sender, txn_id=delivery.txn_id,
                        message=message)
        self._send_packet(packet, delivery.sender.logical_host)

    def _do_forward(self, proc: _AsyncProcess, effect: ipc.Forward) -> None:
        delivery = effect.delivery
        if proc.unreplied.pop(delivery.txn_id, None) is None:
            raise NotAwaitingReply(
                f"txn {delivery.txn_id} is not held by {proc.name!r}")
        message = effect.message if effect.message is not None else delivery.message
        packet = Packet(PacketKind.REQUEST, src_pid=delivery.sender,
                        dst_pid=effect.dst, txn_id=delivery.txn_id,
                        message=message, info={"forwarder": proc.pid})
        self._send_packet(packet, effect.dst.logical_host)
        return None

    # ----------------------------------------------------------------- moves

    async def _do_move(self, proc: _AsyncProcess, other: Pid, direction: str,
                       offset: int, nbytes: int,
                       data: Optional[bytes]) -> Any:
        if not any(d.sender == other for d in proc.unreplied.values()):
            raise NotAwaitingReply(
                f"bulk move with {other!r}, which is not blocked on us")
        txn = next(iter(d.txn_id for d in proc.unreplied.values()
                        if d.sender == other))
        move_id = next(_waiter_counter)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._move_waiters[move_id] = future
        message = Message.request(0, segment=data) if data is not None else None
        packet = Packet(PacketKind.MOVE_REQUEST, src_pid=proc.pid,
                        dst_pid=other, txn_id=txn, message=message,
                        info={"direction": direction, "offset": offset,
                              "nbytes": nbytes, "move_id": move_id})
        self._send_packet(packet, other.logical_host)
        try:
            result = await asyncio.wait_for(future, MOVE_TIMEOUT)
        except asyncio.TimeoutError as err:
            raise KernelError("bulk move timed out") from err
        finally:
            self._move_waiters.pop(move_id, None)
        if isinstance(result, KernelError):
            raise result
        return result

    # ------------------------------------------------------------------ pids

    async def _do_get_pid(self, service: int, scope: Scope) -> Optional[Pid]:
        if scope is not Scope.REMOTE:
            local = self.registry.lookup_local(service)
            if local is not None:
                return local
        if scope is Scope.LOCAL:
            return None
        waiter = next(_waiter_counter)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._getpid_waiters[waiter] = future
        packet = Packet(PacketKind.GETPID_QUERY, src_pid=Pid.make(self.host_id, 1),
                        dst_pid=None, txn_id=0,
                        info={"service": int(service), "waiter": waiter,
                              "origin": self.host_id})
        data = encode_packet(packet)
        for host_id in self.domain.host_ids():
            if host_id != self.host_id:
                self._sendto(data, host_id)
        try:
            return await asyncio.wait_for(future, GETPID_TIMEOUT)
        except asyncio.TimeoutError:
            return None
        finally:
            self._getpid_waiters.pop(waiter, None)

    async def _do_group_send(self, proc: _AsyncProcess,
                             effect: ipc.GroupSend) -> Message:
        members = [pid for pid in self.domain.groups.members(effect.group_id)
                   if pid != proc.pid]
        if not members:
            return Message.reply(ReplyCode.NO_SERVER)
        txn = next(_txn_counter)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._reply_waiters[txn] = future
        for member in members:
            packet = Packet(PacketKind.GROUP_REQUEST, src_pid=proc.pid,
                            dst_pid=member, txn_id=txn, message=effect.message,
                            info={"group": effect.group_id})
            self._send_packet(packet, member.logical_host)
        try:
            return await asyncio.wait_for(future, REPLY_TIMEOUT)
        except asyncio.TimeoutError:
            return Message.reply(ReplyCode.NO_SERVER)
        finally:
            self._reply_waiters.pop(txn, None)

    # --------------------------------------------------------------- receive

    def _on_datagram(self, data: bytes) -> None:
        try:
            packet = decode_packet(data)
        except Exception:
            return
        handler = {
            PacketKind.REQUEST: self._on_request,
            PacketKind.GROUP_REQUEST: self._on_request,
            PacketKind.REPLY: self._on_reply,
            PacketKind.NACK: self._on_reply,
            PacketKind.GETPID_QUERY: self._on_getpid_query,
            PacketKind.GETPID_RESPONSE: self._on_getpid_response,
            PacketKind.MOVE_REQUEST: self._on_move_request,
            PacketKind.MOVE_RESPONSE: self._on_move_response,
        }.get(packet.kind)
        if handler is not None:
            handler(packet)

    def _on_request(self, packet: Packet) -> None:
        assert packet.dst_pid is not None and packet.message is not None
        proc = self.find_process(packet.dst_pid)
        if proc is None:
            nack = Packet(PacketKind.NACK, src_pid=packet.dst_pid,
                          dst_pid=packet.src_pid, txn_id=packet.txn_id,
                          message=Message.reply(ReplyCode.NONEXISTENT_PROCESS))
            self._send_packet(nack, packet.src_pid.logical_host)
            return
        proc.queue.append(ipc.Delivery(
            message=packet.message, sender=packet.src_pid,
            txn_id=packet.txn_id, forwarder=packet.info.get("forwarder"),
            via_group=packet.kind is PacketKind.GROUP_REQUEST))
        proc.arrival.set()

    def _on_reply(self, packet: Packet) -> None:
        future = self._reply_waiters.get(packet.txn_id)
        if future is not None and not future.done():
            future.set_result(packet.message)

    def _on_getpid_query(self, packet: Packet) -> None:
        found = self.registry.lookup_remote(packet.info["service"])
        if found is None or self.find_process(found) is None:
            return
        response = Packet(PacketKind.GETPID_RESPONSE, src_pid=found,
                          dst_pid=None, txn_id=0,
                          info={"waiter": packet.info["waiter"], "pid": found})
        self._send_packet(response, packet.info["origin"])

    def _on_getpid_response(self, packet: Packet) -> None:
        future = self._getpid_waiters.get(packet.info["waiter"])
        if future is not None and not future.done():
            future.set_result(packet.info["pid"])

    def _on_move_request(self, packet: Packet) -> None:
        """The mover wants at a segment our local blocked sender exposed."""
        info = packet.info
        segment = self._exposed.get(packet.txn_id)
        response_info = {"move_id": info["move_id"], "ok": segment is not None}
        message = None
        if segment is not None:
            try:
                if info["direction"] == "from":
                    data = segment.read(int(info["offset"]), int(info["nbytes"]))
                    message = Message.request(0, segment=data)
                else:
                    assert packet.message is not None
                    segment.write(int(info["offset"]),
                                  packet.message.segment or b"")
            except KernelError as err:
                response_info["ok"] = False
                response_info["error"] = str(err)
        response = Packet(PacketKind.MOVE_RESPONSE, src_pid=packet.dst_pid or Pid(0),
                          dst_pid=packet.src_pid, txn_id=packet.txn_id,
                          message=message, info=response_info)
        self._send_packet(response, packet.src_pid.logical_host)

    def _on_move_response(self, packet: Packet) -> None:
        future = self._move_waiters.get(packet.info["move_id"])
        if future is None or future.done():
            return
        if not packet.info.get("ok", False):
            future.set_result(KernelError(
                packet.info.get("error", "bulk move rejected")))
        elif packet.message is not None:
            future.set_result(packet.message.segment or b"")
        else:
            future.set_result(None)


class _AsyncGroups:
    def __init__(self) -> None:
        self._members: dict[int, set[Pid]] = {}

    def join(self, group_id: int, pid: Pid) -> None:
        self._members.setdefault(group_id, set()).add(pid)

    def leave(self, group_id: int, pid: Pid) -> None:
        self._members.get(group_id, set()).discard(pid)

    def members(self, group_id: int) -> set[Pid]:
        return set(self._members.get(group_id, set()))

    def pop_pid(self, pid: Pid) -> None:
        for members in self._members.values():
            members.discard(pid)


class AsyncDomain:
    """A V domain over loopback UDP."""

    def __init__(self) -> None:
        self.hosts: dict[int, AsyncHost] = {}
        self.groups = _AsyncGroups()
        self.failures: list[tuple[str, BaseException]] = []
        self._next_host_id = 1
        self._idle = asyncio.Event()
        self._live_processes = 0

    async def create_host(self, name: str | None = None) -> AsyncHost:
        host_id = self._next_host_id
        self._next_host_id += 1
        host = AsyncHost(self, host_id, name or f"host{host_id}")
        await host.start()
        self.hosts[host_id] = host
        return host

    def host_ids(self) -> list[int]:
        return sorted(self.hosts)

    def address_of(self, host_id: int) -> Optional[tuple[str, int]]:
        host = self.hosts.get(host_id)
        return host.address if host is not None else None

    def process_exited(self) -> None:
        pass  # placeholder for completion accounting

    async def shutdown(self) -> None:
        for host in self.hosts.values():
            host.close()
        await asyncio.sleep(0)

    def check_healthy(self) -> None:
        if self.failures:
            name, exc = self.failures[0]
            raise AssertionError(f"process {name} failed: {exc!r}") from exc
