"""Timing calibration: every simulated cost, fitted to the paper's numbers.

The paper reports wall-clock measurements from 10 MHz SUN workstations on a
3 Mbit experimental Ethernet.  The reproduction replaces that hardware with a
discrete-event simulation, so each measurement becomes a *composition* of the
constants below.  The derivations:

**E1 -- remote message transaction = 2.56 ms (32-byte messages, Sec. 3.1).**
A Send-Receive-Reply is two network hops (request, reply).  Each hop is
  sender-kernel CPU + wire time of one frame + receiver-kernel CPU.
A short-message frame is 32 bytes of message + 34 bytes of link headers
= 66 bytes; at 3 Mbit/s that is 176 us on the wire.  Solving
  2 * (2 * KERNEL_CPU + 176us) = 2560 us
gives KERNEL_CPU = 552 us per packet per kernel traversal -- consistent with
the V kernel's published software overhead on a 10 MHz 68000.

**Local transaction = 0.77 ms.**  The paper's companion kernel study (SOSP'83,
reference 6) measured 0.77 ms for a local Send-Receive-Reply; the naming
paper's 1.21 ms local Open builds on it.  Each local hop (send delivery or
reply delivery) therefore costs 385 us of kernel CPU; no wire is involved.

**E4 -- Open = 1.21 / 3.70 / 5.14 / 7.69 ms (Sec. 6).**
- Client stub overhead ("creating the message ... processing the reply")
  = 1.21 - 0.77 = 440 us, split 220 us before / 220 us after the transaction.
- An Open request appends the name as a fixed 256-byte segment buffer (V
  carried CSnames in a segment after the short message).  Remotely that frame
  is 34 + 32 + 256 = 322 bytes = 859 us of wire, so remote Open
  = 440 + (2*552 + 859) + (2*552 + 176) us = 3.69 ms  (paper: 3.70 ms).
- The context prefix server adds one *local* hop into the prefix server plus
  its parse/lookup CPU; the forward out replaces the client's own send, so
  the added cost is independent of whether the final server is local or
  remote -- exactly the paper's observation (3.94 vs 3.99 ms deltas).
  Solving 5.14 ms = 1.21 ms + LOCAL_HOP + PREFIX_CPU + LOCAL_HOP... i.e.
  via-prefix-local = stub + hop(client->prefix) + PREFIX_CPU
                     + hop(prefix->server) + hop(reply) = 1.595ms + PREFIX_CPU
  gives PREFIX_CPU = 3.545 ms (string parse + context directory lookup +
  message rewrite on a 10 MHz 68000).

**E2 -- MoveTo of 64 KB = 338 ms, "within 13 percent of the maximum speed at
which a SUN workstation can write packets" (Sec. 3.1).**  Bulk transfer is
host-CPU bound, not wire bound: the raw packet-write limit is 64 KB in
338/1.13 = 299 ms, i.e. 4.674 ms per 1 KB data packet, and the MoveTo
protocol adds 13 percent per-packet overhead.

**E3 -- sequential read = 17.13 ms/page with a 15 ms/page disk (Sec. 3.1).**
The file server is single-threaded per stream: it transmits the reply for
page k (kernel CPU + wire of a 578-byte frame = 0.552 + 1.541 ms), then
starts the disk read for page k+1, giving a steady-state period of
0.552 + 1.541 + 15 = 17.09 ms/page  (paper: 17.13 ms).

Changing a constant here is the *only* sanctioned way to retune the
reproduction; everything else derives timing from this model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Link-level framing overhead per packet (preamble, addresses, type, CRC).
FRAME_OVERHEAD_BYTES = 34

#: V short messages are exactly 32 bytes (Sec. 3.2).
SHORT_MESSAGE_BYTES = 32

#: CSnames travel in a fixed-size appended segment buffer (Sec. 5.3 / 6).
NAME_SEGMENT_BYTES = 256

#: Bulk (MoveTo/MoveFrom) data packet payload.
DATA_PACKET_BYTES = 1024

#: Disk page size and per-page access time used throughout Sec. 3.1.
DISK_PAGE_BYTES = 512
DISK_PAGE_SECONDS = 15e-3


@dataclass(frozen=True)
class LatencyModel:
    """All simulated costs, parameterized by network speed.

    Instances are immutable; pass a custom model to :class:`repro.kernel.domain.Domain`
    to explore other hardware points (e.g. the 10 Mbit Ethernet).
    """

    #: Network bandwidth in bits per second.
    bandwidth_bps: float = 3_000_000.0

    #: Kernel CPU per packet per traversal (send side or receive side).
    kernel_cpu_per_packet: float = 552e-6

    #: Kernel CPU for one local message hop (send delivery or reply delivery).
    local_hop: float = 385e-6

    #: Client stub cost around a CSname operation, before/after the transaction.
    stub_pre: float = 220e-6
    stub_post: float = 220e-6

    #: Context prefix server parse + lookup + rewrite CPU per request.
    prefix_server_cpu: float = 3.545e-3

    #: Raw host limit for writing one 1 KB data packet (CPU-bound, wire included).
    raw_packet_write: float = 4.674e-3

    #: MoveTo/MoveFrom protocol overhead as a fraction of the raw write cost.
    bulk_protocol_overhead: float = 0.13

    #: memcpy-style cost for local (same-host) bulk moves, per byte.
    local_move_per_byte: float = 0.25e-6

    #: Disk page read/write time (Sec. 3.1's "512 byte page every 15 ms").
    disk_page_seconds: float = DISK_PAGE_SECONDS

    #: CPU to service a broadcast frame a host turns out not to want (E10).
    broadcast_discard_cpu: float = 100e-6

    def wire_time(self, payload_bytes: int) -> float:
        """Transmission time of one frame carrying ``payload_bytes``."""
        bits = (FRAME_OVERHEAD_BYTES + payload_bytes) * 8
        return bits / self.bandwidth_bps

    def message_frame_bytes(self, segment_bytes: int = 0) -> int:
        """Frame payload for a short message plus an appended segment."""
        return SHORT_MESSAGE_BYTES + segment_bytes

    def remote_hop(self, segment_bytes: int = 0) -> float:
        """One network hop of a short message (+ optional appended segment)."""
        payload = self.message_frame_bytes(segment_bytes)
        return 2 * self.kernel_cpu_per_packet + self.wire_time(payload)

    def remote_transaction(self, request_segment: int = 0, reply_segment: int = 0) -> float:
        """Full Send-Receive-Reply between two hosts, excluding server work."""
        return self.remote_hop(request_segment) + self.remote_hop(reply_segment)

    def local_transaction(self) -> float:
        """Full Send-Receive-Reply on one host, excluding server work."""
        return 2 * self.local_hop

    def bulk_packets(self, nbytes: int) -> int:
        """Number of data packets a bulk move of ``nbytes`` is split into."""
        if nbytes <= 0:
            return 0
        return math.ceil(nbytes / DATA_PACKET_BYTES)

    def bulk_move_remote(self, nbytes: int) -> float:
        """MoveTo/MoveFrom of ``nbytes`` across the network (host-CPU bound)."""
        per_packet = self.raw_packet_write * (1.0 + self.bulk_protocol_overhead)
        return self.bulk_packets(nbytes) * per_packet

    def bulk_move_raw(self, nbytes: int) -> float:
        """The no-protocol-overhead packet-write bound the paper compares to."""
        return self.bulk_packets(nbytes) * self.raw_packet_write

    def bulk_move_local(self, nbytes: int) -> float:
        """Same-host bulk move: a bounded-cost copy."""
        return nbytes * self.local_move_per_byte

    def reply_transmit_busy(self, segment_bytes: int) -> float:
        """Server-side busy time to push out one reply frame (E3's 2.09 ms)."""
        return self.kernel_cpu_per_packet + self.wire_time(
            self.message_frame_bytes(segment_bytes)
        )


@dataclass(frozen=True)
class WireFaultModel:
    """Per-frame probabilistic faults for the simulated Ethernet.

    The paper's kernel promises a *reliable* Send transaction over an
    *unreliable* Ethernet; this model is the unreliable part.  Each frame
    delivery (per destination host) independently draws from a seeded RNG
    stream (:meth:`repro.kernel.domain.Domain.set_wire_faults` wires the
    domain's :class:`~repro.sim.rng.DeterministicRng`), so a given seed
    reproduces the exact same loss pattern on every run:

    - with probability ``drop_rate`` the frame is silently discarded
      (metered as ``net.drops`` -- distinct from partition/link-down losses);
    - otherwise, with probability ``delay_rate`` its delivery is deferred by
      an extra uniform(``delay_min``, ``delay_max``) seconds (observed in the
      ``net.injected_delay_seconds`` histogram when obs is attached);
    - and with probability ``dup_rate`` a second copy is delivered, with its
      own independent delay draw (metered as ``net.dups``).

    Rates apply per (frame, destination): a broadcast can reach some hosts
    and miss others, exactly like a real cable.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_min: float = 0.0
    delay_max: float = 2e-3

    def __post_init__(self) -> None:
        for field_name in ("drop_rate", "dup_rate", "delay_rate"):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1]: {rate}")
        if self.delay_min < 0 or self.delay_max < self.delay_min:
            raise ValueError(
                f"need 0 <= delay_min <= delay_max "
                f"(got {self.delay_min}, {self.delay_max})")

    @property
    def is_null(self) -> bool:
        """True when no fault can ever fire (the lossless wire)."""
        return (self.drop_rate == 0.0 and self.dup_rate == 0.0
                and self.delay_rate == 0.0)


#: The fault-free wire every experiment before E14 runs on.
LOSSLESS_WIRE = WireFaultModel()


#: The paper's measurement configuration: 3 Mbit experimental Ethernet.
STANDARD_3MBIT = LatencyModel(bandwidth_bps=3_000_000.0)

#: The faster wire some of the cluster used; kernel CPU costs unchanged.
STANDARD_10MBIT = LatencyModel(bandwidth_bps=10_000_000.0)
