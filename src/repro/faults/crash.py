"""Fail-stop crash injection.

Crashes are scheduled against the simulated clock, so experiments can place
a failure *between* the steps of a multi-server operation (the E8b window)
or take a server out for a measured interval (E8c availability).

A crash kills every process on the host, clears kernel tables, and cuts the
network link; blocked senders elsewhere discover it through the kernel's
probe protocol and fail with TIMEOUT.  Restarting brings the *machine* back
empty -- services reappear only when respawned and re-registered, exactly
the "recreated after a crash with a different process identifier" situation
the paper's service-naming level exists to absorb (Sec. 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.kernel.domain import Domain
from repro.kernel.host import Host
from repro.sim.engine import ScheduledEvent


def crash_at(domain: Domain, host: Host, time: float) -> ScheduledEvent:
    """Schedule a fail-stop crash of ``host`` at simulated ``time``."""
    return domain.engine.schedule_at(time, host.crash)


def restart_at(domain: Domain, host: Host, time: float,
               respawn: Optional[Callable[[Host], None]] = None) -> ScheduledEvent:
    """Schedule a restart; ``respawn(host)`` rebuilds its servers."""

    def bring_up() -> None:
        host.restart()
        if respawn is not None:
            respawn(host)

    return domain.engine.schedule_at(time, bring_up)


@dataclass
class CrashSchedule:
    """A reusable crash/restart plan for one host."""

    domain: Domain
    host: Host
    events: list[ScheduledEvent] = field(default_factory=list)

    def down_between(self, start: float, end: float,
                     respawn: Optional[Callable[[Host], None]] = None
                     ) -> "CrashSchedule":
        if end <= start:
            raise ValueError("restart must follow the crash")
        self.events.append(crash_at(self.domain, self.host, start))
        self.events.append(restart_at(self.domain, self.host, end, respawn))
        return self

    def cancel(self) -> None:
        for event in self.events:
            event.cancel()
        self.events.clear()
