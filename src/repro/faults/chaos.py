"""Composable chaos schedules and invariant checks (E14 harness).

A :class:`ChaosSchedule` arranges *when* faults happen: probabilistic wire
loss phases (:class:`~repro.net.latency.WireFaultModel` installed and
removed at scheduled times), fail-stop crash/restart windows
(:mod:`repro.faults.crash`), and network partitions
(:mod:`repro.faults.partition`) compose on one simulated timeline.  Because
every fault source draws from the domain's seeded rng streams, a chaos run
is a pure function of its seed: a failing schedule replays exactly.

The invariant checks are the point.  Retransmission machinery is easy to
get *almost* right; these assertions pin the ways it tends to be wrong:

- **timer leaks** -- no live scheduled event may reference a dead process
  (a cancelled-but-forgotten probe or retransmission timer keeps kernel
  state reachable and can resurrect a transaction);
- **stuck transactions** -- once the event queue drains, no kernel may
  still hold an outstanding send transaction (every Send either completed
  or failed within its probe/retry budget);
- **explained timeouts** -- a send may only time out if the run actually
  injected loss, cut a link, or crashed a host; a TIMEOUT on a healthy
  quiet wire means the protocol dropped a reply on the floor itself;
- **cache accounting** -- every stale-hint fallback must have invalidated
  at least one cached binding (a fallback that leaves the bad binding in
  place loops forever on it).

``python -m repro.faults.chaos --seed 7 --duration 5 --drop 0.1`` runs a
short seeded workload (a workstation client reading through the prefix
server and its name cache while the wire loses frames and the file server
crashes and comes back) and exits nonzero if any invariant fails --
``--require-retransmits`` additionally fails the run if the retransmission
path was never exercised, which is the CI gate against silently disabling
the machinery.

``--watchdogs`` arms the telemetry collector and the default SLO watchdog
rules (:mod:`repro.obs.telemetry`) over the same run, serving them through
the ``[obs]`` name space, and adds one more invariant: after quiescence the
alert log read *through the protocol* (``[obs]/fleet/alerts``, so the read
itself crossed the recovering wire) must agree record-for-record with what
the watchdog engine emitted -- alert delivery must not be lossy even when
the wire is.  ``--require-alert-cycle`` fails the run unless at least one
alert both fired and resolved (the CI gate that the watchdogs actually
watch).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.faults.crash import CrashSchedule
from repro.faults.partition import heal_partition, partition_between
from repro.kernel.domain import Domain
from repro.kernel.host import Host
from repro.kernel.process import Process
from repro.net.latency import WireFaultModel
from repro.sim.engine import ScheduledEvent


class InvariantViolation(AssertionError):
    """One or more chaos invariants failed; the message lists them all."""

    #: The run's flight recorder when it flew with one (``--flight``):
    #: finalized at the moment of failure so the black boxes can be dumped.
    flight = None

    def __init__(self, problems: list[str]) -> None:
        super().__init__("chaos invariants violated:\n- " +
                         "\n- ".join(problems))
        self.problems = problems


# --------------------------------------------------------------- scheduling


@dataclass
class ChaosSchedule:
    """Faults composed on one timeline: loss phases, crashes, partitions."""

    domain: Domain
    events: list[ScheduledEvent] = field(default_factory=list)
    crashes: list[CrashSchedule] = field(default_factory=list)

    def loss_between(self, start: float, end: float,
                     faults: WireFaultModel) -> "ChaosSchedule":
        """Install ``faults`` on the wire at ``start``, remove at ``end``."""
        if end <= start:
            raise ValueError("loss phase must end after it starts")
        self.events.append(self.domain.engine.schedule_at(
            start, self.domain.set_wire_faults, faults))
        self.events.append(self.domain.engine.schedule_at(
            end, self.domain.set_wire_faults, None))
        return self

    def crash_between(self, host: Host, start: float, end: float,
                      respawn=None) -> "ChaosSchedule":
        """Fail-stop ``host`` for [start, end); ``respawn(host)`` on restart."""
        self.crashes.append(CrashSchedule(self.domain, host).down_between(
            start, end, respawn))
        return self

    def partition_between(self, start: float, end: float,
                          group_a: Iterable[int],
                          group_b: Iterable[int]) -> "ChaosSchedule":
        """Cut the wire between two host-id sets for [start, end)."""
        side_a, side_b = list(group_a), list(group_b)
        self.events.append(self.domain.engine.schedule_at(
            start, partition_between, self.domain, side_a, side_b))
        self.events.append(self.domain.engine.schedule_at(
            end, heal_partition, self.domain))
        return self

    def cancel(self) -> None:
        for event in self.events:
            event.cancel()
        self.events.clear()
        for plan in self.crashes:
            plan.cancel()
        self.crashes.clear()


# --------------------------------------------------------------- invariants


def check_no_timer_leaks(domain: Domain) -> list[str]:
    """No live scheduled event may reference a dead process.

    Kernel timers (probe, retransmission, delay wakeups) hold their subject
    in the event's args; terminating a process must cancel them.  A leaked
    timer is latent corruption: it can step a closed generator or revive a
    transaction the kernel already forgot.
    """
    problems = []
    # Heap entries are (time, seq, callback, args, event-or-None); posted
    # fire-and-forget entries have no event object and cannot be cancelled.
    for time, __, callback, args, event in domain.engine._queue:
        if event is not None and event.cancelled:
            continue
        for arg in args:
            if isinstance(arg, Process) and not arg.alive:
                problems.append(
                    f"event {callback.__qualname__} at "
                    f"t={time:.4f} references dead process "
                    f"{arg.name!r} ({arg.pid!r})")
    return problems


def check_no_stuck_transactions(domain: Domain) -> list[str]:
    """After the queue drains, no kernel may still hold an outstanding Send.

    Every transaction must complete (reply, NACK) or fail (TIMEOUT within
    the probe budget); an entry left in ``_outstanding`` is a sender
    blocked forever.
    """
    problems = []
    for host in domain.hosts.values():
        if host._outstanding:
            txns = ", ".join(f"txn {t.txn_id} -> {t.dst!r}"
                             for t in host._outstanding.values())
            problems.append(f"host {host.name!r} still holds outstanding "
                            f"transactions after quiescence: {txns}")
    return problems


def check_timeouts_explained(domain: Domain) -> list[str]:
    """A send timeout requires metered loss, a cut link, or a crash."""
    metrics = domain.metrics
    timeouts = metrics.count("ipc.send_timeouts")
    if timeouts == 0:
        return []
    injected = (metrics.count("net.drops")
                + metrics.count("net.frames_lost")
                + metrics.count("net.frames_dropped"))
    crashes = metrics.count("kernel.crashes")
    if injected == 0 and crashes == 0:
        return [f"{timeouts} send timeout(s) on a healthy wire: no frame "
                "was dropped, no link was down, no host crashed -- the "
                "protocol lost a reply by itself"]
    return []


def check_cache_accounting(cache) -> list[str]:
    """Every stale-hint fallback must have invalidated a cached binding."""
    stats = cache.stats
    if stats.invalidations < stats.fallbacks:
        return [f"name cache fell back {stats.fallbacks} time(s) but only "
                f"invalidated {stats.invalidations} binding(s): a stale "
                "binding survived its own fallback"]
    return []


def check_lease_coherence(cluster) -> list[str]:
    """No replica -- live or crashed -- may ever have served a resolution
    from an expired lease.

    The shard coherence rule (:mod:`repro.core.shard`) is that a non-owner
    replica either holds a fresh lease on a binding or *refuses* with a
    RETRY redirect; ``expired_served`` counts the forbidden third option.
    Checked across every replica the cluster ever spawned, because the
    violation we care most about is a replica serving stale state in the
    window right around its own crash or rejoin.
    """
    problems = []
    for server in cluster.all_servers():
        if server.expired_served:
            problems.append(
                f"shard replica {server.replica_id} served "
                f"{server.expired_served} resolution(s) from an expired "
                "lease -- coherence rule violated")
    return problems


def check_invariants(domain: Domain, cache=None) -> None:
    """Run every applicable check; raise :class:`InvariantViolation`."""
    problems = (check_no_timer_leaks(domain)
                + check_no_stuck_transactions(domain)
                + check_timeouts_explained(domain))
    if cache is not None:
        problems += check_cache_accounting(cache)
    if problems:
        raise InvariantViolation(problems)


def assert_retransmission_exercised(domain: Domain) -> None:
    """CI gate: under injected loss the retransmission path must fire."""
    retransmits = domain.metrics.count("ipc.retransmits")
    if retransmits == 0:
        raise InvariantViolation(
            ["loss was injected but ipc.retransmits == 0: the "
             "retransmission machinery never ran (disabled, or the fault "
             "model is not reaching the wire)"])


# ------------------------------------------------------------ the harness


@dataclass
class ChaosReport:
    """What one seeded chaos run did and observed."""

    seed: int
    duration: float
    drop_rate: float
    reads_ok: int = 0
    reads_failed: int = 0
    reads_wrong: int = 0
    metrics: dict = field(default_factory=dict)
    cache_stats: dict = field(default_factory=dict)
    #: Watchdog summary (``--watchdogs`` only): fired/resolved counts, the
    #: alert records, and how many came back through the [obs] read.
    alerts: dict = field(default_factory=dict)
    #: Flight-recorder summary (``flight=True`` only): per-host record and
    #: digest-window counts plus postmortem tally -- all deterministic.
    flight: dict = field(default_factory=dict)
    #: The live recorder object itself (not serialized); replay and the
    #: CLI's postmortem dumper read lanes and chains off it.
    recorder: object = None

    @property
    def reads(self) -> int:
        return self.reads_ok + self.reads_failed + self.reads_wrong

    @property
    def success_rate(self) -> float:
        return self.reads_ok / self.reads if self.reads else 0.0

    def to_dict(self) -> dict:
        document = {
            "seed": self.seed,
            "duration": self.duration,
            "drop_rate": self.drop_rate,
            "reads": self.reads,
            "reads_ok": self.reads_ok,
            "reads_failed": self.reads_failed,
            "reads_wrong": self.reads_wrong,
            "success_rate": round(self.success_rate, 4),
            "metrics": self.metrics,
            "cache": self.cache_stats,
        }
        if self.alerts:
            document["alerts"] = self.alerts
        if self.flight:
            document["flight"] = self.flight
        return document


_PAYLOAD = b"chaos-payload"

_METRIC_KEYS = (
    "ipc.retransmits", "ipc.dup_suppressed", "ipc.reply_resends",
    "ipc.send_timeouts", "ipc.probes", "net.drops", "net.dups",
    "net.delayed_frames", "net.frames_lost", "net.frames_dropped",
    "kernel.crashes", "services.getpid_retries", "services.getpid_timeouts",
)


def run_chaos(seed: int = 7, duration: float = 5.0, drop: float = 0.10,
              dup: float = 0.02, delay_rate: float = 0.05,
              crash: bool = True, watchdogs: bool = False,
              flight: bool = False) -> ChaosReport:
    """One seeded chaos run; returns the report after checking invariants.

    A workstation client reads two names -- one through a fixed ``[root]``
    prefix binding, one through the generic ``[storage]`` binding -- in a
    tight loop while the wire drops/duplicates/delays frames for most of
    the run and (optionally) the file server crashes and respawns in the
    middle of it.  The wire is clean for the first and last stretch so the
    cache warms up honestly and the run can quiesce.

    With ``watchdogs=True``, the ``[obs]`` name space and the telemetry
    collector (default SLO rules) run over the same timeline; after the
    run, the alert log is read back through ``[obs]/fleet/alerts`` and
    must match the engine's emitted events exactly (see module docstring).

    With ``flight=True``, a flight recorder (:mod:`repro.obs.flight`) flies
    with the run: every kernel Send/Reply/Forward/packet lands in per-host
    ring buffers with digest chains, the mid-run crash freezes vax1's black
    box into a postmortem dump, and ``report.recorder`` exposes the lanes
    for replay/divergence tooling.  If an invariant fails, the finalized
    recorder is attached to the raised :class:`InvariantViolation` so the
    caller can dump the black boxes from the wreck.
    """
    from repro.core.resolver import NameError_
    from repro.runtime import files
    from repro.vio.client import IoError
    from repro.runtime.workstation import setup_workstation, standard_prefixes
    from repro.servers.base import start_server
    from repro.servers.fileserver.server import VFileServer

    def populated_server() -> VFileServer:
        server = VFileServer(user="mann")
        node = server.store.make_path("data/f0.dat", directory=False)
        node.data[:] = _PAYLOAD
        return server

    domain = Domain(seed=seed)
    recorder = None
    if flight:
        from repro.obs.flight import enable_flight_recorder

        recorder = enable_flight_recorder(domain)
    workstation = setup_workstation(domain, "mann")
    fs_host = domain.create_host("vax1")
    handle = start_server(fs_host, populated_server())
    standard_prefixes(workstation, handle)
    cache = workstation.enable_name_cache()

    telemetry = None
    if watchdogs:
        from repro.servers.statserver import enable_obs_namespace

        enable_obs_namespace(domain, workstation.host)
        telemetry = domain.enable_telemetry(interval=0.1)

    faults = WireFaultModel(drop_rate=drop, dup_rate=dup,
                            delay_rate=delay_rate)
    schedule = ChaosSchedule(domain)
    schedule.loss_between(0.1 * duration, 0.9 * duration, faults)
    if crash:
        def respawn(host):
            # The respawned server has a new pid: re-register its services
            # (the generic [storage] binding re-resolves via GetPid on its
            # own) and rebind the fixed prefixes, as the workstation's boot
            # script would.  The prefix server notifies attached caches of
            # each rebinding.
            new_handle = start_server(host, populated_server())
            standard_prefixes(workstation, new_handle)

        schedule.crash_between(fs_host, 0.4 * duration, 0.5 * duration,
                               respawn=respawn)

    report = ChaosReport(seed=seed, duration=duration, drop_rate=drop)

    def client(session):
        from repro.kernel.ipc import Delay, Now

        while True:
            now = yield Now()
            if now >= duration:
                break
            for name in ("[root]data/f0.dat", "[storage]data/f0.dat"):
                try:
                    data = yield from files.read_file(session, name)
                except (NameError_, IoError):
                    report.reads_failed += 1
                else:
                    if data == _PAYLOAD:
                        report.reads_ok += 1
                    else:
                        report.reads_wrong += 1
            yield Delay(0.02)

    workstation.host.spawn(client(workstation.session()), name="chaos-client")
    domain.run()
    domain.check_healthy()

    report.metrics = {key: domain.metrics.count(key) for key in _METRIC_KEYS}
    report.cache_stats = {
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "fallbacks": cache.stats.fallbacks,
        "invalidations": cache.stats.invalidations,
    }
    if recorder is not None:
        recorder.finalize()
        report.recorder = recorder
        report.flight = {
            "hosts": {
                name: {
                    "records_seen": recorder.stats(name)["records_seen"],
                    "windows": len(recorder.chain(name)),
                }
                for name in recorder.hosts()
            },
            "postmortems": {name: len(dumps)
                            for name, dumps in
                            sorted(recorder.postmortems.items())},
        }
    try:
        check_invariants(domain, cache=cache)
    except InvariantViolation as violation:
        # Attach the black boxes to the wreck: the caller can dump every
        # lane's postmortem without re-running the scenario.
        violation.flight = recorder
        raise
    if telemetry is not None:
        alerts = telemetry.alerts
        report.alerts = {
            "fired": alerts.fired,
            "resolved": alerts.resolved,
            "active": sorted(f"{rule}@{host}"
                             for rule, host in alerts.active),
            "events": alerts.to_records(),
        }
        delivered = read_alerts_via_obs(workstation)
        report.alerts["delivered"] = len(delivered)
        check_alert_delivery(delivered, alerts.to_records())
    return report


# ------------------------------------------------- the replica-crash storm


@dataclass
class ShardStormReport:
    """What one seeded replica-crash storm did and observed."""

    seed: int
    duration: float
    n_replicas: int
    n_prefixes: int
    n_clients: int
    reads_ok: int = 0
    reads_failed: int = 0
    reads_wrong: int = 0
    promotions: int = 0
    rejoins: int = 0
    map_version: int = 0
    metrics: dict = field(default_factory=dict)
    resolvers: list = field(default_factory=list)
    replicas: list = field(default_factory=list)
    #: Post-quiescence coherence audit document (repro.obs.audit): via the
    #: ``[obs]`` protocol walk when ``watchdogs=True``, direct otherwise.
    audit: dict = field(default_factory=dict)
    #: Watchdog summary (``watchdogs=True`` only), same shape as run_chaos.
    alerts: dict = field(default_factory=dict)

    @property
    def reads(self) -> int:
        return self.reads_ok + self.reads_failed + self.reads_wrong

    @property
    def success_rate(self) -> float:
        return self.reads_ok / self.reads if self.reads else 0.0

    def to_dict(self) -> dict:
        document = {
            "seed": self.seed,
            "duration": self.duration,
            "n_replicas": self.n_replicas,
            "n_prefixes": self.n_prefixes,
            "n_clients": self.n_clients,
            "reads": self.reads,
            "reads_ok": self.reads_ok,
            "reads_failed": self.reads_failed,
            "reads_wrong": self.reads_wrong,
            "success_rate": round(self.success_rate, 4),
            "promotions": self.promotions,
            "rejoins": self.rejoins,
            "map_version": self.map_version,
            "metrics": self.metrics,
            "resolvers": self.resolvers,
            "replicas": self.replicas,
        }
        if self.audit:
            document["audit"] = self.audit
        if self.alerts:
            document["alerts"] = self.alerts
        return document


def run_replica_storm(seed: int = 11, duration: float = 6.0,
                      n_replicas: int = 3, n_prefixes: int = 48,
                      n_clients: int = 2, lease_ttl: float = 0.8,
                      crash: bool = True,
                      retry_budget: int = 4,
                      watchdogs: bool = False,
                      audit_every: Optional[float] = None,
                      on_audit=None) -> ShardStormReport:
    """Crash every shard replica in turn under live Zipf read traffic.

    A :class:`~repro.core.shard.ShardCluster` of ``n_replicas`` serves
    ``n_prefixes`` seeded prefix bindings (all pointing into one file
    server, which stays up -- this storm is about the *name service*
    failing, not the data).  Each client runs its own
    :class:`~repro.core.shard.ShardResolver` and reads Zipf-popular
    ``[pK]`` names in a loop while staggered crash windows take each
    replica down and bring it back; the cluster's failover hook promotes
    by consistent hashing and the restarted replica rejoins by pulling a
    live peer's table.

    Invariants, on top of the standard chaos set: every resolver's cache
    accounting must balance, and :func:`check_lease_coherence` must find
    zero resolutions served from expired leases -- across every replica
    incarnation the storm ever spawned.  With ``n_replicas >= 2`` the
    storm additionally expects **zero failed reads**: some live replica
    can always answer (after at most a probe-budget timeout against the
    corpse), so every name must resolve during and after failover.

    ``n_replicas=1`` is the degenerate "the prefix server itself crashes
    and restarts" configuration: reads may fail while the only replica is
    down (there is nobody to fail over to), but the accounting and lease
    invariants must still hold, and the respawn re-seeds the table the way
    a workstation boot script would.

    After quiescence, every storm additionally runs the **coherence
    audit** (:func:`repro.obs.audit.audit_direct` -- pure memory reads):
    any entry the auditor classifies incoherent is an invariant failure.
    With ``watchdogs=True``, a watcher workstation, the ``[obs]`` name
    space, the coherence probe, and the telemetry collector (default +
    coherence SLO rules) ride along; the post-run audit then walks the
    fleet *through the protocol* (``audit_via_obs``) and the alert log is
    checked for lossless delivery, as in :func:`run_chaos`.
    ``audit_every`` schedules additional in-run direct audit sweeps every
    that many simulated seconds, each passed to ``on_audit(document)``.
    """
    from repro.core.context import ContextPair, WellKnownContext
    from repro.core.resolver import NameError_
    from repro.core.shard import ShardCluster
    from repro.kernel.ipc import Delay, Now
    from repro.runtime import files
    from repro.runtime.session import Session
    from repro.servers.base import start_server
    from repro.servers.fileserver.server import VFileServer
    from repro.vio.client import IoError

    domain = Domain(seed=seed)
    fs_host = domain.create_host("vax1")
    fileserver = VFileServer(user="mann")
    node = fileserver.store.make_path("data/f0.dat", directory=False)
    node.data[:] = _PAYLOAD
    fs_handle = start_server(fs_host, fileserver)
    pair = ContextPair(fs_handle.pid, int(WellKnownContext.DEFAULT))

    replica_hosts = domain.create_hosts(n_replicas, prefix="ns")
    cluster = ShardCluster(domain, replica_hosts, lease_ttl=lease_ttl)
    for index in range(n_prefixes):
        cluster.seed_binding(f"p{index}", pair)

    from repro.obs.audit import audit_direct

    watcher = None
    telemetry = None
    if watchdogs:
        from repro.obs.audit import enable_coherence
        from repro.obs.telemetry import coherence_watchdogs, default_watchdogs
        from repro.runtime.workstation import (
            setup_workstation,
            standard_prefixes,
        )
        from repro.servers.statserver import enable_obs_namespace

        watcher = setup_workstation(domain, "watch")
        standard_prefixes(watcher, fs_handle)
        enable_obs_namespace(domain, fs_host)
        enable_coherence(domain)
        telemetry = domain.enable_telemetry(
            interval=0.1, rules=default_watchdogs() + coherence_watchdogs())

    report = ShardStormReport(seed=seed, duration=duration,
                              n_replicas=n_replicas, n_prefixes=n_prefixes,
                              n_clients=n_clients)

    resolvers = []

    def client(session, stream: str):
        while True:
            now = yield Now()
            if now >= duration:
                break
            index = domain.rng.zipf_index(stream, n_prefixes, 1.1)
            try:
                data = yield from files.read_file(
                    session, f"[p{index}]data/f0.dat")
            except (NameError_, IoError):
                report.reads_failed += 1
            else:
                if data == _PAYLOAD:
                    report.reads_ok += 1
                else:
                    report.reads_wrong += 1
            yield Delay(0.03)

    for number in range(n_clients):
        client_host = domain.create_host(f"client{number + 1}")
        # host= registers the resolver for the coherence audit (and the
        # [obs] coherence leaf); pure bookkeeping, zero simulated cost.
        resolver = cluster.resolver(host=client_host)
        session = Session(current=pair, prefix_server=cluster.primary_pid(),
                          latency=domain.latency, cache=resolver)
        session.env.retry_budget = retry_budget
        resolvers.append(resolver)
        client_host.spawn(client(session, f"storm.client{number}"),
                          name=f"storm-client-{number}")

    schedule = ChaosSchedule(domain)
    if crash:
        if n_replicas == 1:
            # The only copy of the prefix table dies with its host; the
            # respawn re-seeds it, as the workstation boot script would.
            def reseed(host):
                for index in range(n_prefixes):
                    cluster.seed_binding(f"p{index}", pair)

            schedule.crash_between(replica_hosts[0], 0.4 * duration,
                                   0.5 * duration, respawn=reseed)
        else:
            # Staggered non-overlapping windows: every replica dies once,
            # and at least n-1 replicas are alive at every instant.
            for index, host in enumerate(replica_hosts):
                start = (0.25 + index * 0.18) * duration
                schedule.crash_between(host, start, start + 0.10 * duration)

    if audit_every is not None and audit_every > 0:
        # Periodic direct audit sweeps: pure memory reads on the simulated
        # timeline (no sends, no rng), bounded by the storm window so the
        # run can still quiesce.  The bound must be the *clock*, not the
        # queue: a pending-count check would deadlock-by-politeness with
        # the telemetry tick (each sees the other's next event as pending
        # work and reschedules forever).  The quiescent audit after
        # domain.run() covers everything past the last sweep.
        def sweep():
            document = audit_direct(domain)
            if on_audit is not None:
                on_audit(document)
            if domain.now + audit_every < duration:
                domain.engine.schedule(audit_every, sweep)

        domain.engine.schedule(audit_every, sweep)

    domain.run()
    domain.check_healthy()

    report.promotions = cluster.promotions
    report.rejoins = cluster.rejoins
    report.map_version = cluster.map.version
    report.metrics = {key: domain.metrics.count(key) for key in _METRIC_KEYS}
    report.resolvers = [resolver.snapshot() for resolver in resolvers]
    report.replicas = [server.snapshot_shard()
                       for server in cluster.all_servers()]

    # The coherence audit invariant: at quiescence, no cached entry
    # anywhere in the fleet may classify incoherent.  Direct (zero-cost)
    # always; through the [obs] protocol walk as well when it is deployed.
    direct_audit = audit_direct(domain)
    report.audit = direct_audit
    if watchdogs and watcher is not None:
        from repro.obs.audit import audit_via_obs

        report.audit = audit_via_obs(watcher)

    problems = (check_no_timer_leaks(domain)
                + check_no_stuck_transactions(domain)
                + check_timeouts_explained(domain)
                + check_lease_coherence(cluster))
    for resolver in resolvers:
        problems += check_cache_accounting(resolver)
    if crash and n_replicas >= 2 and report.reads_failed:
        problems.append(
            f"{report.reads_failed} read(s) failed with {n_replicas} "
            "replicas: failover must keep every name resolvable")
    if report.reads_wrong:
        problems.append(f"{report.reads_wrong} read(s) returned wrong data")
    audits = ([direct_audit] if report.audit is direct_audit
              else [direct_audit, report.audit])
    for source in audits:
        for finding in source["findings"]["incoherent"]:
            problems.append(
                f"coherence audit ({source['via']}): {finding['tier']} "
                f"entry [{finding.get('prefix', finding.get('name'))}] on "
                f"{finding['host']} is incoherent (stamp "
                f"({finding['epoch']},{finding['source']}) vs owner "
                f"{finding['owner']})")
    if telemetry is not None:
        alerts = telemetry.alerts
        report.alerts = {
            "fired": alerts.fired,
            "resolved": alerts.resolved,
            "active": sorted(f"{rule}@{host}"
                             for rule, host in alerts.active),
            "events": alerts.to_records(),
        }
        delivered = read_alerts_via_obs(watcher)
        report.alerts["delivered"] = len(delivered)
        try:
            check_alert_delivery(delivered, alerts.to_records())
        except InvariantViolation as violation:
            problems += violation.problems
    if problems:
        raise InvariantViolation(problems)
    return report


def read_alerts_via_obs(workstation) -> list[dict]:
    """Read ``[obs]/fleet/alerts`` through the protocol; the alert records.

    Spawned after quiescence, so the read travels the full Sec. 5.4
    forwarding chain (prefix server -> obs root -> fleet leaf) over the
    now-healed wire -- the same path a live operator's monitor would use.
    """
    from repro.runtime import files

    payloads: list[bytes] = []

    def reader(session):
        data = yield from files.read_file(session, "[obs]/fleet/alerts")
        payloads.append(data)

    workstation.host.spawn(reader(workstation.session()), name="alert-reader")
    workstation.host.domain.run()
    if not payloads:
        return []
    records = [json.loads(line)
               for line in payloads[0].splitlines() if line.strip()]
    return [record for record in records if record.get("kind") == "alert"]


def check_alert_delivery(delivered: list[dict],
                         emitted: list[dict]) -> None:
    """The alert log served through ``[obs]`` must match what was emitted.

    Alerts ride the same retransmitting transport as everything else, so a
    lossy wire may delay the read but must never lose or reorder records.
    """
    if delivered != emitted:
        raise InvariantViolation(
            [f"alert log read through [obs]/fleet/alerts disagrees with "
             f"the watchdog engine: {len(delivered)} record(s) delivered "
             f"vs {len(emitted)} emitted"])


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.chaos",
        description="Run a seeded chaos schedule and check invariants.")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration", type=float, default=5.0,
                        help="simulated seconds (default 5)")
    parser.add_argument("--drop", type=float, default=0.10,
                        help="frame drop rate during the loss phase")
    parser.add_argument("--dup", type=float, default=0.02)
    parser.add_argument("--delay-rate", type=float, default=0.05)
    parser.add_argument("--no-crash", action="store_true",
                        help="skip the mid-run file-server crash")
    parser.add_argument("--require-retransmits", action="store_true",
                        help="fail unless ipc.retransmits > 0 (CI gate)")
    parser.add_argument("--watchdogs", action="store_true",
                        help="arm telemetry + default SLO watchdogs and "
                             "check alert delivery through [obs]")
    parser.add_argument("--require-alert-cycle", action="store_true",
                        help="fail unless >=1 alert fired AND resolved "
                             "(implies --watchdogs; CI gate)")
    parser.add_argument("--flight", action="store_true",
                        help="fly a flight recorder with the run (per-host "
                             "ring buffers + digest chains); on invariant "
                             "failure dump every black box")
    parser.add_argument("--flight-dir", default=".",
                        help="directory for postmortem dumps written on "
                             "invariant failure (default: cwd)")
    parser.add_argument("--flight-dump", action="store_true",
                        help="write every lane's black box to --flight-dir "
                             "even when the run is healthy (implies "
                             "--flight; CI artifact)")
    parser.add_argument("--storm", action="store_true",
                        help="run the shard replica-crash storm instead of "
                             "the wire-loss scenario: crash every replica "
                             "of a sharded prefix cluster in turn under "
                             "Zipf read traffic and check the lease "
                             "coherence + failover invariants")
    parser.add_argument("--replicas", type=int, default=3,
                        help="shard replicas for --storm (default 3; 1 = "
                             "the prefix server itself crash/restarts)")
    parser.add_argument("--storm-prefixes", type=int, default=48,
                        help="seeded prefixes for --storm (default 48)")
    parser.add_argument("--storm-clients", type=int, default=2,
                        help="client hosts for --storm (default 2)")
    args = parser.parse_args(argv)

    if args.storm:
        try:
            storm = run_replica_storm(
                seed=args.seed if args.seed != 7 else 11,
                duration=args.duration if args.duration != 5.0 else 6.0,
                n_replicas=args.replicas,
                n_prefixes=args.storm_prefixes,
                n_clients=args.storm_clients,
                crash=not args.no_crash,
                watchdogs=args.watchdogs)
        except InvariantViolation as violation:
            print(violation, file=sys.stderr)
            return 1
        print(json.dumps(storm.to_dict(), indent=2))
        return 0

    try:
        report = run_chaos(seed=args.seed, duration=args.duration,
                           drop=args.drop, dup=args.dup,
                           delay_rate=args.delay_rate,
                           crash=not args.no_crash,
                           watchdogs=args.watchdogs
                           or args.require_alert_cycle,
                           flight=args.flight or args.flight_dump)
    except InvariantViolation as violation:
        print(violation, file=sys.stderr)
        if violation.flight is not None:
            from repro.obs.flight import dump_postmortems

            for path in dump_postmortems(violation.flight, args.flight_dir,
                                         seed=args.seed):
                print(f"postmortem dump: {path}", file=sys.stderr)
        return 1
    print(json.dumps(report.to_dict(), indent=2))
    if args.flight_dump:
        from repro.obs.flight import dump_postmortems

        for path in dump_postmortems(report.recorder, args.flight_dir,
                                     seed=args.seed):
            print(f"postmortem dump: {path}", file=sys.stderr)
    if args.require_retransmits and report.metrics["ipc.retransmits"] == 0:
        print("FAIL: injected loss but ipc.retransmits == 0",
              file=sys.stderr)
        return 1
    if args.require_alert_cycle:
        fired = report.alerts.get("fired", 0)
        resolved = report.alerts.get("resolved", 0)
        if not fired or not resolved:
            print(f"FAIL: watchdogs never completed a fire/resolve cycle "
                  f"(fired={fired}, resolved={resolved})", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
