"""Failure injection.

- :mod:`repro.faults.crash` -- fail-stop host crashes and restarts on a
  schedule (E8b, E8c).
- :mod:`repro.faults.partition` -- network partitions via Ethernet drop
  rules.
"""

from repro.faults.crash import crash_at, restart_at, CrashSchedule
from repro.faults.partition import partition_between, heal_partition

__all__ = [
    "crash_at",
    "restart_at",
    "CrashSchedule",
    "partition_between",
    "heal_partition",
]
