"""Failure injection.

- :mod:`repro.faults.crash` -- fail-stop host crashes and restarts on a
  schedule (E8b, E8c).
- :mod:`repro.faults.partition` -- network partitions via Ethernet drop
  rules.
- :mod:`repro.faults.chaos` -- composed loss/crash/partition schedules
  with invariant checks and a seeded CLI harness (E14).
"""

from repro.faults.chaos import (
    ChaosReport,
    ChaosSchedule,
    InvariantViolation,
    assert_retransmission_exercised,
    check_invariants,
    run_chaos,
)
from repro.faults.crash import crash_at, restart_at, CrashSchedule
from repro.faults.partition import partition_between, heal_partition

__all__ = [
    "crash_at",
    "restart_at",
    "CrashSchedule",
    "partition_between",
    "heal_partition",
    "ChaosReport",
    "ChaosSchedule",
    "InvariantViolation",
    "assert_retransmission_exercised",
    "check_invariants",
    "run_chaos",
]
