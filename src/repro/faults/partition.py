"""Network partitions.

A partition is a drop rule installed on the Ethernet: frames crossing the
cut are discarded in both directions.  Senders see the same symptom as a
crashed peer -- probe timeouts -- which is the correct indistinguishability
for a fail-stop + lossy-network model.
"""

from __future__ import annotations

from typing import Iterable

from repro.kernel.domain import Domain
from repro.net.packet import Frame


def partition_between(domain: Domain, group_a: Iterable[int],
                      group_b: Iterable[int]) -> None:
    """Cut the network between two sets of host ids."""
    side_a = frozenset(group_a)
    side_b = frozenset(group_b)
    overlap = side_a & side_b
    if overlap:
        raise ValueError(f"hosts on both sides of the cut: {sorted(overlap)}")

    def dropped(frame: Frame, dst_host: int) -> bool:
        src = frame.src_host
        return ((src in side_a and dst_host in side_b)
                or (src in side_b and dst_host in side_a))

    domain.ethernet.set_drop_predicate(dropped)


def heal_partition(domain: Domain) -> None:
    """Remove the partition rule."""
    domain.ethernet.set_drop_predicate(None)
