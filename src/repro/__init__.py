"""Reproduction of Cheriton & Mann, "Uniform Access to Distributed Name
Interpretation in the V-System" (ICDCS 1984).

See README.md for a tour and DESIGN.md for the system inventory.  The
re-exports below cover the common path: build a :class:`Domain`, start
servers, wire a :class:`Workstation`, and resolve names through a
:class:`Session`::

    from repro import Domain, VFileServer, start_server
    from repro.runtime.workstation import setup_workstation, standard_prefixes

    domain = Domain()
    ws = setup_workstation(domain, "mann")
    fs = start_server(domain.create_host("vax1"), VFileServer(user="mann"))
    standard_prefixes(ws, fs)
"""

from repro.core.context import ContextPair, WellKnownContext
from repro.core.descriptors import DescriptorTag, ObjectDescription
from repro.core.prefix_server import ContextPrefixServer
from repro.kernel.domain import Domain
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import Scope, ServiceId
from repro.net.latency import STANDARD_3MBIT, STANDARD_10MBIT, LatencyModel
from repro.runtime.session import Session
from repro.runtime.workstation import (
    Workstation,
    setup_workstation,
    standard_prefixes,
)
from repro.servers import VFileServer, start_server

__version__ = "1.0.0"

__all__ = [
    "Domain",
    "Pid",
    "Message",
    "RequestCode",
    "ReplyCode",
    "Scope",
    "ServiceId",
    "LatencyModel",
    "STANDARD_3MBIT",
    "STANDARD_10MBIT",
    "ContextPair",
    "WellKnownContext",
    "ObjectDescription",
    "DescriptorTag",
    "ContextPrefixServer",
    "Session",
    "Workstation",
    "setup_workstation",
    "standard_prefixes",
    "VFileServer",
    "start_server",
    "__version__",
]
