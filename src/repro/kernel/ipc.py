"""The IPC effect vocabulary (paper Sec. 3.1).

Processes are generator functions that ``yield`` the effect objects defined
here; the kernel interprets each effect, charges its simulated cost, and
resumes the generator with the result.  Helpers that need to block are
themselves generators and are composed with ``yield from``.

The vocabulary mirrors the V primitives:

========================  =====================================================
``Send(dst, msg)``        message transaction; blocks until the reply arrives;
                          resumes with the reply :class:`Message`
``Receive()``             blocks for the next request; resumes with a
                          :class:`Delivery`
``Reply(to, msg)``        unblocks a sender; resumes after the reply is pushed
                          onto the wire (the replier is busy for that long)
``Forward(dv, dst, msg)`` pass a received request to a third process so it
                          appears the original sender sent it there
``MoveFrom/MoveTo``       bulk moves against the memory a blocked sender
                          exposed with its Send
``SetPid/GetPid``         kernel service registration and lookup (Sec. 4.2)
``JoinGroup/GroupSend``   process groups and one-to-many Send (Sec. 7)
``Delay(s)``              model CPU time or sleeping
``Now()``                 read the simulated clock
``Spawn(body, name)``     create a process on the same host
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.kernel.errors import BadSegmentAccess
from repro.kernel.messages import Message
from repro.kernel.pids import Pid
from repro.kernel.services import Scope


class Segment:
    """A region of the sender's memory exposed for the duration of a Send.

    V let the recipient of a message read and write "the memory space of the
    message sender up to the point that the reply message is sent"
    (Sec. 3.1); in practice senders designated a buffer.  ``MoveFrom`` reads
    it, ``MoveTo`` writes it (only if ``writable``).
    """

    __slots__ = ("_data", "writable")

    def __init__(self, data: bytes | bytearray = b"", writable: bool = False,
                 size: int | None = None) -> None:
        if size is not None:
            buf = bytearray(size)
            buf[: len(data)] = bytes(data)[:size]
            self._data = buf
        else:
            self._data = bytearray(data)
        self.writable = writable

    def __len__(self) -> int:
        return len(self._data)

    def read(self, offset: int, nbytes: int) -> bytes:
        if offset < 0 or nbytes < 0 or offset + nbytes > len(self._data):
            raise BadSegmentAccess(
                f"read [{offset}, {offset + nbytes}) outside segment of {len(self._data)}"
            )
        return bytes(self._data[offset : offset + nbytes])

    def write(self, offset: int, data: bytes) -> None:
        if not self.writable:
            raise BadSegmentAccess("segment is read-only")
        if offset < 0 or offset + len(data) > len(self._data):
            raise BadSegmentAccess(
                f"write [{offset}, {offset + len(data)}) outside segment of {len(self._data)}"
            )
        self._data[offset : offset + len(data)] = data

    def snapshot(self) -> bytes:
        return bytes(self._data)


@dataclass(slots=True, init=False)
class Delivery:
    """What ``Receive`` resumes with: a request plus its provenance.

    ``sender`` is always the *original* sender, even if the message arrived
    via ``Forward`` -- the defining property of V forwarding (Sec. 3.1).
    ``forwarder`` records who forwarded it here, when known.

    One delivery is built per received request (hand-written ``__init__``;
    the generated one is measurably slower on the IPC hot path).
    """

    message: Message
    sender: Pid
    txn_id: int
    forwarder: Optional[Pid] = None
    via_group: bool = False

    def __init__(self, message: Message, sender: Pid, txn_id: int,
                 forwarder: Optional[Pid] = None,
                 via_group: bool = False) -> None:
        self.message = message
        self.sender = sender
        self.txn_id = txn_id
        self.forwarder = forwarder
        self.via_group = via_group


# --------------------------------------------------------------------------
# Effects.  Plain dataclasses; the kernel dispatches on type.
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Send:
    """Blocking message transaction to ``dst``; resumes with the reply."""

    dst: Pid
    message: Message
    expose: Optional[Segment] = None


@dataclass(slots=True)
class Receive:
    """Block until a request arrives.  ``from_pid`` filters by sender."""

    from_pid: Optional[Pid] = None


@dataclass(slots=True)
class Reply:
    """Unblock ``to`` (which must be awaiting our reply) with ``message``."""

    to: Pid
    message: Message


@dataclass(slots=True)
class Forward:
    """Forward a received request to ``dst`` on behalf of its sender.

    ``message`` is the (possibly rewritten) request -- the name-handling
    protocol's mapping procedure rewrites the context id and name index
    before forwarding (Sec. 5.4).
    """

    delivery: Delivery
    dst: Pid
    message: Optional[Message] = None  # default: forward unchanged


@dataclass(slots=True)
class MoveFrom:
    """Read ``nbytes`` at ``offset`` from the segment ``src`` exposed."""

    src: Pid
    offset: int
    nbytes: int


@dataclass(slots=True)
class MoveTo:
    """Write ``data`` at ``offset`` into the segment ``dst`` exposed."""

    dst: Pid
    offset: int
    data: bytes


@dataclass(slots=True)
class Delay:
    """Advance simulated time by ``seconds`` (models CPU work or sleep)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"negative delay: {self.seconds}")


@dataclass(slots=True)
class SetPid:
    """Register the *current process* as providing ``service`` (Sec. 4.2)."""

    service: int
    scope: Scope = Scope.BOTH


@dataclass(slots=True)
class GetPid:
    """Look up the server for ``service``; resumes with a Pid or None."""

    service: int
    scope: Scope = Scope.ANY


@dataclass(slots=True)
class JoinGroup:
    """Add the current process to process group ``group_id`` (Sec. 7)."""

    group_id: int


@dataclass(slots=True)
class LeaveGroup:
    group_id: int


@dataclass(slots=True)
class GroupSend:
    """One-to-many Send: resumes with the *first* reply from the group."""

    group_id: int
    message: Message


@dataclass(slots=True)
class Annotate:
    """Attach observability attributes to the span of a held transaction.

    Servers yield this while handling the request identified by ``txn_id``
    (its :class:`Delivery`'s transaction id) to enrich the kernel-created
    hop span with protocol-level facts: which context was searched, how much
    of the name was consumed, what the mapping decided.  Costs **zero
    simulated time** and is a no-op when the domain has no observability
    attached, so instrumented servers behave identically either way.

    ``append=True`` accumulates each attribute onto a list instead of
    overwriting -- used for per-step mapping records, which grow when a
    server's name space links back into itself.
    """

    txn_id: int
    attrs: dict
    append: bool = False


@dataclass(slots=True)
class ProfileEnter:
    """Open an attribution frame ``phase:<label>`` for the current process.

    Server code brackets a protocol phase (the prefix server wraps its
    parse/lookup CPU in ``prefix_lookup``) so the attribution profiler
    (:mod:`repro.obs.profile`) charges the simulated time spent inside to
    that phase.  The frame is per-process state: it survives the generator's
    suspensions without leaking into interleaved processes.  Costs **zero
    simulated time** and is a no-op unless a profiler is attached, so
    instrumented servers behave identically either way.  Close with
    :class:`ProfileExit`; frames left open are dropped when the process
    exits.
    """

    label: str


@dataclass(slots=True)
class ProfileExit:
    """Close the innermost :class:`ProfileEnter` frame (zero cost)."""


@dataclass(slots=True)
class Now:
    """Resumes with the current simulated time (seconds)."""


@dataclass(slots=True)
class MyPid:
    """Resumes with the current process's Pid."""


@dataclass(slots=True)
class Spawn:
    """Create a process on this host; resumes with its Pid."""

    body: Any  # a generator (ProcessBody)
    name: str = "process"


@dataclass(slots=True)
class Exit:
    """Terminate the current process immediately."""


EffectResult = Any
Proc = Generator[Any, EffectResult, Any]


def request_reply(dst: Pid, message: Message,
                  expose: Segment | None = None) -> Proc:
    """``yield from`` helper: one Send, returning the reply message."""
    reply = yield Send(dst, message, expose)
    return reply
