"""One machine: kernel tables plus the effect interpreter.

A :class:`Host` is a workstation or server machine running the distributed V
kernel.  It owns the local process table, pid allocator, service registry,
and the kernel half of every IPC primitive.  Processes on the host are
generator tasks; the host interprets the effects they yield, charging
simulated costs from the domain's :class:`~repro.net.latency.LatencyModel`.

Timing rules (derivations in ``repro/net/latency.py``):

- a *local* message hop (send delivery, reply delivery, forward delivery to a
  same-host process) costs ``local_hop`` of kernel CPU;
- transmitting a packet costs the sending process ``kernel_cpu_per_packet``
  plus the frame's wire time (the experimental Ethernet interface was
  CPU-driven, which is also why a replying server is busy until its reply
  frame is out -- the effect E3 measures);
- an arriving frame costs ``kernel_cpu_per_packet`` before the kernel acts
  on it.

Failure semantics: Sends to processes that do not exist fail with a
``NONEXISTENT_PROCESS`` reply (immediately if the destination kernel is
reachable).  Sends to crashed/partitioned hosts fail with ``TIMEOUT`` after
the probe protocol gives up (see :mod:`repro.kernel.config`).
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from typing import TYPE_CHECKING, Any, Optional

from repro.kernel import ipc
from repro.kernel.errors import (
    HostDown,
    IllegalEffect,
    KernelError,
    NotAwaitingReply,
)
from repro.kernel.ipc import Delivery
from repro.kernel.messages import Message, Packet, PacketKind, ReplyCode, code_name
from repro.kernel.pids import Pid, PidAllocator
from repro.kernel.process import Process, ProcessState, Transaction
from repro.kernel.services import Scope, ServiceRegistry
from repro.net.packet import BROADCAST, Frame, GroupAddress
from repro.obs.flight import (
    KIND_COMPLETE as _K_COMPLETE,
    KIND_FORWARD as _K_FORWARD,
    KIND_REPLY as _K_REPLY,
    KIND_SEND as _K_SEND,
    PACKET_BASE as _PACKET_BASE,
)
from repro.sim.process import Task, TaskFailure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.domain import Domain

#: Sentinel distinguishing "effect completed with this value" from "blocked".
_BLOCKED = object()


class Host:
    """A single machine in a V domain."""

    def __init__(self, domain: "Domain", host_id: int, name: str) -> None:
        self.domain = domain
        self.host_id = host_id
        self.name = name
        self.engine = domain.engine
        self.ethernet = domain.ethernet
        self.latency = domain.latency
        self.metrics = domain.metrics
        self.config = domain.config
        self.obs = domain.obs

        start = domain.rng.randint(f"pids.{host_id}", 1, 0xFFFE)
        self.allocator = PidAllocator(host_id, start=start)
        self.processes: dict[int, Process] = {}
        self.registry = ServiceRegistry()
        # Surface this kernel's registration removals at the domain hub so
        # holders of looked-up pids (the client name cache) can subscribe in
        # one place rather than per host.
        self.registry.subscribe_removals(domain._notify_pid_removed)
        self.crashed = False
        #: Per-host IPC counters (the domain metrics registry aggregates
        #: across machines; introspection wants this kernel's share).
        #: A defaultdict so _count is a single indexed increment.
        self.counters: dict[str, int] = defaultdict(int)
        #: When this kernel came up (simulated seconds); reset by restart().
        self.started_at = self.engine.now
        #: Pre-bound id allocators off the domain's per-run streams (one
        #: attribute load saved on every Send / GetPid broadcast).
        self._next_txn_id = domain._txn_counter.__next__
        self._next_waiter_id = domain._waiter_counter.__next__
        #: Flight-recorder fast path: this lane's bound ``list.append``
        #: while a recorder is attached (repro.obs.flight), else None.
        #: The record sites use it as both gate and sink -- one attribute
        #: load when disabled, one C call plus a tuple build when armed.
        self._flight_append = None
        if domain.flight is not None:
            domain.flight.bind(self)

        #: Sender-side: txn_id -> Transaction for this host's blocked senders.
        self._outstanding: dict[int, Transaction] = {}
        #: Receiver-side: txn_id -> ("queued"|"received", pid) or ("forwarded", new_dst)
        self._presence: dict[int, tuple[str, Pid]] = {}
        #: Receiver-side: the last replies pushed to remote senders, kept so
        #: a retransmitted request (or a probe) whose original reply frame
        #: was lost can be answered by replay instead of a spurious NACK.
        self._reply_cache: OrderedDict[int, Packet] = OrderedDict()
        #: GetPid broadcast waiters:
        #: waiter_id -> (process, timeout_event, service, attempts)
        self._getpid_waiters: dict[int, tuple[Process, Any, int, int]] = {}
        #: Group-send timeout events: txn_id -> event
        self._group_timeouts: dict[int, Any] = {}
        #: Observability: txn_id -> transaction span (this host's senders).
        self._txn_spans: dict[int, Any] = {}
        #: Observability: (txn_id, receiver pid) -> server hop span.
        self._hop_spans: dict[tuple[int, Pid], Any] = {}

        self.ethernet.attach(host_id, self._on_frame)

        # ---- hot-path flyweights -------------------------------------
        # Latency constants and the frame pool never change for the life
        # of the host; per-frame code reads them through one attribute
        # instead of a chain.  (Engine methods are NOT pre-bound anywhere:
        # the profiler's dispatch swap relies on attribute lookup.)
        self._kernel_cpu = self.latency.kernel_cpu_per_packet
        self._local_hop = self.latency.local_hop
        self._acquire_frame = self.ethernet.frame_pool.acquire
        # KernelConfig is frozen; snapshot the per-probe and per-send scalars.
        self._probe_interval = self.config.probe_interval
        self._max_failed_probes = self.config.max_failed_probes
        self._retransmit_enabled = self.config.retransmit_enabled
        self._retransmit_initial = self.config.retransmit_initial
        # Pre-bind the callbacks this kernel posts per frame or per
        # transaction: a bound-method object is otherwise allocated at
        # every post.  (Self-shadowing is deliberate -- the instance
        # attribute holds the one bound method every later lookup returns.)
        self._transmit_put = self._transmit_put
        self._handle_packet = self._handle_packet
        self._deliver_local_request = self._deliver_local_request
        self._complete_local_txn = self._complete_local_txn
        self._probe_fire = self._probe_fire
        self._retransmit_fire = self._retransmit_fire
        # Pre-resolved registry counters for the per-transaction metrics
        # (same Counter objects the registry serves, so every view agrees).
        registry = self.metrics.registry
        self._m_sends = registry.counter("ipc.sends")
        self._m_deliveries = registry.counter("ipc.deliveries")
        self._m_replies = registry.counter("ipc.replies")
        self._m_transactions = registry.counter("ipc.transactions")
        self._m_probes = registry.counter("ipc.probes")

    # ------------------------------------------------------------- lifecycle

    def spawn(self, body, name: str = "process") -> Process:
        """Create a process from a generator (or a callable taking its Pid)."""
        if self.crashed:
            raise HostDown(f"host {self.name} is crashed")
        pid = self.allocator.allocate()
        if callable(body) and not hasattr(body, "send"):
            body = body(pid)
        task = Task(body, name=f"{self.name}/{name}")
        proc = Process(pid, task, name)
        self.processes[pid.local_id] = proc
        if self.domain.tracer is not None:
            self._trace("proc", name, f"spawned as {pid!r}")
        self.engine.post(0.0, self._start_process, proc)
        return proc

    def _start_process(self, proc: Process) -> None:
        if not proc.alive:
            return
        self._advance(proc, first=True)

    def find_process(self, pid: Pid) -> Optional[Process]:
        proc = self.processes.get(pid.local_id)
        # Pid equality is value equality and aliveness is a state check;
        # both inlined -- this runs on every delivery and probe.
        if (proc is not None and proc.pid.value == pid.value
                and proc.state is not ProcessState.DEAD):
            return proc
        return None

    def crash(self) -> None:
        """Fail-stop: kill every process, drop all kernel state, cut the link.

        Blocked senders on *other* hosts discover the crash through probe
        timeouts; senders on this host die with it.
        """
        if self.crashed:
            return
        self.crashed = True
        # A host that was permanently detach()ed has no link to cut; a crash
        # plan composed with permanent removal must kill the host, not the
        # engine.
        if self.ethernet.is_attached(self.host_id):
            self.ethernet.set_link(self.host_id, False)
        for proc in list(self.processes.values()):
            proc.state = ProcessState.DEAD
            proc.task.close()
        self.processes.clear()
        for txn in self._outstanding.values():
            txn.cancel_probe()
            txn.cancel_retransmit()
        self._outstanding.clear()
        self._presence.clear()
        self._reply_cache.clear()
        for __, event, __, __ in self._getpid_waiters.values():
            event.cancel()
        self._getpid_waiters.clear()
        for event in self._group_timeouts.values():
            event.cancel()
        self._group_timeouts.clear()
        if self.obs is not None:
            for span in list(self._txn_spans.values()) + list(
                    self._hop_spans.values()):
                self.obs.spans.finish(span, self.engine.now,
                                      aborted="host crashed")
        self._txn_spans.clear()
        self._hop_spans.clear()
        self.registry.clear()
        flight = self.domain.flight
        if flight is not None:
            # Freeze the black box at the instant of death: the postmortem
            # dump survives even if this machine restarts and keeps flying.
            flight.freeze(self)
        self.metrics.incr("kernel.crashes")
        self._trace("fault", self.name, "host crashed")
        self.domain._notify_host_crashed(self)

    def restart(self) -> None:
        """Bring the machine back up (with empty tables; respawn servers)."""
        if not self.crashed:
            return
        self.crashed = False
        if self.ethernet.is_attached(self.host_id):
            self.ethernet.set_link(self.host_id, True)
        self.counters.clear()
        self.started_at = self.engine.now
        self._trace("fault", self.name, "host restarted")
        self.domain._notify_host_restarted(self)

    # --------------------------------------------------------- process loop

    def _advance(self, proc: Process, value: Any = None,
                 exc: BaseException | None = None, first: bool = False) -> None:
        """Step a process, dispatching immediate effects inline.

        Under profiling, everything this step schedules is attributed to
        ``host -> process (-> service) (-> open phase frames)``; the scope
        *replaces* the engine's current stack (saved and restored around the
        step) so interleaved processes never inherit each other's frames.
        """
        profiling = self.engine.profiling
        if profiling:
            saved_scope = self.engine.profile_scope(self._profile_frames(proc))
        try:
            self._advance_inner(proc, value, exc, first)
        finally:
            if profiling:
                self.engine.profile_restore(saved_scope)

    def _advance_inner(self, proc: Process, value: Any,
                       exc: BaseException | None, first: bool) -> None:
        while True:
            if proc.state is ProcessState.DEAD:
                return
            proc.state = ProcessState.READY
            try:
                if first:
                    finished, effect = proc.task.start()
                    first = False
                elif exc is not None:
                    err, exc = exc, None
                    finished, effect = proc.task.throw(err)
                else:
                    finished, effect = proc.task.resume(value)
            except TaskFailure as failure:
                self.domain.failures.append((proc.task.name, failure.original))
                self._trace("proc", proc.name, f"FAILED: {failure.original!r}")
                self._terminate(proc)
                return
            if finished:
                self._terminate(proc)
                return
            try:
                # The effect dispatch is inlined (one effect per resume,
                # tens of thousands per simulated second); the profiled
                # variant keeps the out-of-line path with phase frames.
                if self.engine.profiling:
                    result = self._dispatch(proc, effect)
                else:
                    handler = _EFFECT_HANDLERS.get(type(effect))
                    if handler is None:
                        raise IllegalEffect(
                            f"process {proc.name!r} yielded {effect!r}, "
                            "which is not a kernel effect")
                    result = handler(self, proc, effect)
            except KernelError as err:
                # API misuse becomes an exception *inside* the process, so a
                # defensive server can catch it; an unhandled one fails the
                # task and is recorded in domain.failures.
                value, exc = None, err
                continue
            if result is _BLOCKED:
                return
            value = result

    def _terminate(self, proc: Process) -> None:
        """Process exit: error-reply held requests, release kernel state."""
        if proc.state is ProcessState.DEAD:
            return
        proc.state = ProcessState.DEAD
        # Anyone whose request we hold (queued or received) gets an error reply.
        held = list(proc.msg_queue) + list(proc.unreplied.values())
        proc.msg_queue.clear()
        proc.unreplied.clear()
        for delivery in held:
            self._presence.pop(delivery.txn_id, None)
            if self.obs is not None:
                span = self._hop_spans.pop((delivery.txn_id, proc.pid), None)
                if span is not None:
                    self.obs.spans.finish(
                        span, self.engine.now,
                        reply_code=ReplyCode.NONEXISTENT_PROCESS.name,
                        aborted="receiver exited")
            self._route_reply(
                proc.pid, delivery,
                Message.reply(ReplyCode.NONEXISTENT_PROCESS), busy=False,
            )
        if proc.pending_txn is not None:
            proc.pending_txn.cancel_probe()
            proc.pending_txn.cancel_retransmit()
            self._outstanding.pop(proc.pending_txn.txn_id, None)
            proc.pending_txn = None
        self.registry.remove_pid(proc.pid)
        self.domain.groups.remove_pid(proc.pid)
        self.processes.pop(proc.pid.local_id, None)
        self.allocator.release(proc.pid)
        self.metrics.incr("kernel.process_exits")
        self._trace("proc", proc.name, "exited")

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, proc: Process, effect: Any) -> Any:
        handler = _EFFECT_HANDLERS.get(type(effect))
        if handler is None:
            raise IllegalEffect(
                f"process {proc.name!r} yielded {effect!r}, which is not a kernel effect"
            )
        if self.engine.profiling:
            # CSNH phase frame for the duration of the handler: everything
            # it schedules (delivery hops, frames, timers) inherits it.
            label = _EFFECT_PHASES.get(type(effect))
            if label is not None:
                self.engine.profile_push(label)
                try:
                    return handler(self, proc, effect)
                finally:
                    self.engine.profile_pop(label)
        return handler(self, proc, effect)

    def _profile_frames(self, proc: Process) -> tuple:
        """The attribution scope for stepping ``proc``: host -> process
        (-> service kind when it differs from the process name) plus any
        frames the process opened with ProfileEnter."""
        frames = ("host:" + self.name, "proc:" + proc.name)
        if self.obs is not None:
            kind = self.obs.actors.get(proc.pid.value)
            if kind is not None and kind != proc.name:
                frames += ("svc:" + kind,)
        return frames + proc.profile_frames

    def profile(self):
        """A scoped profiler reporting only this host's frames.

        Accounting is engine-wide (time is global); the returned profiler
        filters its report to stacks rooted at ``host:<name>``.
        """
        from repro.obs.profile import Profiler

        return Profiler(engine=self.engine, root="host:" + self.name)

    # -- Send ----------------------------------------------------------------

    def _do_send(self, proc: Process, effect: ipc.Send) -> Any:
        if effect.dst.is_logical_service:
            raise IllegalEffect(
                f"cannot Send to logical pid {effect.dst!r}; resolve with GetPid first"
            )
        txn = Transaction(
            txn_id=self._next_txn_id(),
            sender=proc.pid,
            dst=effect.dst,
            message=effect.message,
            expose=effect.expose,
            sent_at=self.engine.now,
        )
        proc.pending_txn = txn
        proc.state = ProcessState.SEND_BLOCKED
        self._outstanding[txn.txn_id] = txn
        self._m_sends.value += 1
        self._count("ipc.sends")
        append = self._flight_append
        if append is not None:
            engine = self.engine
            append((engine._fire_seq, engine._now, _K_SEND,
                    proc.pid.value, effect.dst.value, txn.txn_id))
        if self.obs is not None:
            # One span per message transaction, parented under whatever
            # context the sender put on the message (e.g. the client stub's
            # resolve span); the outgoing message carries *our* context so
            # receiver-side hop spans chain under the transaction.
            span = self.obs.spans.start(
                f"ipc.txn:{code_name(effect.message.code)}", self.engine.now,
                parent=effect.message.trace, actor=f"{self.name}/{proc.name}",
                dst=str(effect.dst), txn=txn.txn_id,
                request_bytes=effect.message.wire_bytes)
            effect.message.trace = span.context
            self._txn_spans[txn.txn_id] = span
        if self.domain.tracer is not None:
            self._trace("ipc", proc.name,
                        f"Send {effect.message!r} -> {effect.dst!r} (txn {txn.txn_id})")
        # ``is_local_to`` and the one-line ``_transmit`` wrapper are inlined
        # here and on the reply/probe paths: one Send/Reply round trip
        # otherwise pays four extra method calls.
        dst_host = effect.dst.logical_host
        if dst_host == self.host_id:
            self.engine.post(self._local_hop,
                             self._deliver_local_request, txn, None)
        else:
            packet = Packet(PacketKind.REQUEST, proc.pid, effect.dst,
                            txn.txn_id, effect.message)
            self.engine.post(self._kernel_cpu,
                             self._transmit_put, packet, dst_host, None)
        self._schedule_probe(txn)
        # Local requests are delivered by a reliable in-kernel hop, but the
        # timer is armed for them too: a Forward may push the transaction
        # onto the (lossy) wire later, and then it is this timer that
        # re-sends the request.
        if self._retransmit_enabled:
            self._schedule_retransmit(txn, self._retransmit_initial)
        return _BLOCKED

    def _deliver_local_request(self, txn: Transaction,
                               forwarder: Optional[Pid]) -> None:
        """Same-host request delivery (Send or Forward landing locally)."""
        dst_proc = self.find_process(txn.dst)
        if dst_proc is None:
            error = Message.reply(ReplyCode.NONEXISTENT_PROCESS)
            if txn.sender.is_local_to(self.host_id):
                self._complete_local_txn(txn, error)
            else:
                nack = Packet(PacketKind.NACK, src_pid=txn.dst,
                              dst_pid=txn.sender, txn_id=txn.txn_id,
                              message=error)
                self._transmit(nack, txn.sender.logical_host)
            return
        delivery = Delivery(message=txn.message, sender=txn.sender,
                            txn_id=txn.txn_id, forwarder=forwarder)
        self._enqueue_delivery(dst_proc, delivery)

    def _complete_local_txn(self, txn: Transaction, reply: Message) -> None:
        """Complete a txn whose sender is on this host."""
        current = self._outstanding.pop(txn.txn_id, None)
        if current is None:
            self.metrics.incr("ipc.duplicate_replies")
            return
        current.cancel_probe()
        current.cancel_retransmit()
        self._group_timeouts.pop(current.txn_id, None)
        span = self._txn_spans.pop(current.txn_id, None)
        if span is not None:
            self.obs.spans.finish(span, self.engine.now,
                                  reply_code=code_name(reply.code),
                                  reply_bytes=reply.wire_bytes)
            self.obs.registry.histogram(
                "ipc.txn_seconds",
                op=code_name(current.message.code)).observe(span.duration)
        sender = self.find_process(current.sender)
        if sender is None or sender.pending_txn is not current:
            return
        sender.pending_txn = None
        self._m_transactions.value += 1
        self._count("ipc.transactions")
        append = self._flight_append
        if append is not None:
            engine = self.engine
            append((engine._fire_seq, engine._now, _K_COMPLETE,
                    current.dst.value, current.sender.value, current.txn_id))
        telemetry = self.domain.telemetry
        if telemetry is not None:
            telemetry.observe_txn(self, self.engine.now - current.sent_at)
        self._advance(sender, value=reply)

    # -- Receive ---------------------------------------------------------------

    def _do_receive(self, proc: Process, effect: ipc.Receive) -> Any:
        delivery = proc.next_matching_delivery(effect.from_pid)
        if delivery is not None:
            self._mark_received(proc, delivery)
            return delivery
        proc.state = ProcessState.RECV_BLOCKED
        proc.recv_filter = effect.from_pid
        return _BLOCKED

    def _mark_received(self, proc: Process, delivery: Delivery) -> None:
        proc.unreplied[delivery.txn_id] = delivery
        if delivery.txn_id in self._presence:
            self._presence[delivery.txn_id] = ("received", proc.pid)

    def _enqueue_delivery(self, proc: Process, delivery: Delivery) -> None:
        if not delivery.via_group:
            self._presence[delivery.txn_id] = ("queued", proc.pid)
        self._m_deliveries.value += 1
        self._count("ipc.deliveries")
        if (self.obs is not None and delivery.message.trace is not None
                and not delivery.via_group):
            # The server-side hop: opens when the request lands at the
            # receiving process, closes at its Reply or Forward.  Group
            # deliveries are excluded -- non-owners silently discard, so
            # their spans would never close.
            span = self.obs.spans.start(
                f"server:{proc.name}", self.engine.now,
                parent=delivery.message.trace,
                actor=f"{self.name}/{proc.name}", txn=delivery.txn_id)
            self._hop_spans[(delivery.txn_id, proc.pid)] = span
        if proc.state is ProcessState.RECV_BLOCKED and (
            proc.recv_filter is None or proc.recv_filter == delivery.sender
        ):
            proc.recv_filter = None
            self._mark_received(proc, delivery)
            self._advance(proc, value=delivery)
        else:
            proc.queue_delivery(delivery)

    # -- Reply -------------------------------------------------------------------

    def _find_unreplied(self, proc: Process, to: Pid) -> Delivery:
        for txn_id in proc.unreplied:
            if proc.unreplied[txn_id].sender == to:
                return proc.unreplied.pop(txn_id)
        raise NotAwaitingReply(
            f"{proc.name!r} tried to Reply/Forward to {to!r}, "
            "which is not awaiting a reply from it"
        )

    def _do_reply(self, proc: Process, effect: ipc.Reply) -> Any:
        delivery = self._find_unreplied(proc, effect.to)
        self._presence.pop(delivery.txn_id, None)
        self._m_replies.value += 1
        self._count("ipc.replies")
        append = self._flight_append
        if append is not None:
            engine = self.engine
            append((engine._fire_seq, engine._now, _K_REPLY,
                    proc.pid.value, effect.to.value, delivery.txn_id))
        if self.obs is not None:
            span = self._hop_spans.pop((delivery.txn_id, proc.pid), None)
            if span is not None:
                self.obs.spans.finish(span, self.engine.now,
                                      reply_code=code_name(effect.message.code))
                # The reply frame's wire span hangs off this hop.
                effect.message.trace = span.context
        if self.domain.tracer is not None:
            self._trace("ipc", proc.name,
                        f"Reply {effect.message!r} -> {effect.to!r} (txn {delivery.txn_id})")
        return self._route_reply(proc.pid, delivery, effect.message, busy=True,
                                 replier=proc)

    def _route_reply(self, from_pid: Pid, delivery: Delivery, message: Message,
                     busy: bool, replier: Process | None = None) -> Any:
        """Send a reply toward ``delivery.sender``.

        ``busy=True`` models the replier being occupied while the reply frame
        is pushed out (remote case); it then returns _BLOCKED and resumes the
        replier when the frame is on the wire.
        """
        sender_pid = delivery.sender
        sender_host = sender_pid.logical_host
        if sender_host == self.host_id:
            txn = self._outstanding.get(delivery.txn_id)
            if txn is not None:
                self.engine.post(self._local_hop,
                                 self._complete_local_txn, txn, message)
            else:
                self.metrics.incr("ipc.duplicate_replies")
            return None
        packet = Packet(PacketKind.REPLY, from_pid, sender_pid,
                        delivery.txn_id, message)
        if self._retransmit_enabled:
            self._cache_reply(delivery.txn_id, packet)
        if busy and replier is not None:
            replier.state = ProcessState.WAITING
            self.engine.post(self._kernel_cpu, self._transmit_put, packet,
                             sender_host,
                             lambda: self._advance(replier, value=None))
            return _BLOCKED
        self.engine.post(self._kernel_cpu,
                         self._transmit_put, packet, sender_host, None)
        return None

    # -- Forward -------------------------------------------------------------------

    def _do_forward(self, proc: Process, effect: ipc.Forward) -> Any:
        delivery = effect.delivery
        if proc.unreplied.pop(delivery.txn_id, None) is None:
            raise NotAwaitingReply(
                f"{proc.name!r} tried to Forward txn {delivery.txn_id}, "
                "which it has not received (or has already answered)"
            )
        message = effect.message if effect.message is not None else delivery.message
        self.metrics.incr("ipc.forwards")
        self._count("ipc.forwards")
        append = self._flight_append
        if append is not None:
            engine = self.engine
            append((engine._fire_seq, engine._now, _K_FORWARD,
                    proc.pid.value, effect.dst.value, delivery.txn_id))
        if self.obs is not None:
            span = self._hop_spans.pop((delivery.txn_id, proc.pid), None)
            if span is not None:
                self.obs.spans.finish(span, self.engine.now,
                                      forwarded_to=str(effect.dst))
                # The next hop's span chains under this one: the span tree
                # *is* the Sec. 5.4 forwarding path.
                message.trace = span.context
        if self.domain.tracer is not None:
            self._trace("ipc", proc.name,
                        f"Forward txn {delivery.txn_id} -> {effect.dst!r}")
        # Tell the sender's kernel where the transaction went, if it is here.
        local_txn = self._outstanding.get(delivery.txn_id)
        if local_txn is not None:
            local_txn.dst = effect.dst
            local_txn.message = message
        if effect.dst.is_local_to(self.host_id):
            self._presence[delivery.txn_id] = ("queued", effect.dst)
            shadow = Transaction(txn_id=delivery.txn_id, sender=delivery.sender,
                                 dst=effect.dst, message=message)
            if local_txn is not None:
                shadow = local_txn
            self.engine.post(self._local_hop,
                             self._deliver_local_request, shadow, proc.pid)
            return None
        self._presence[delivery.txn_id] = ("forwarded", effect.dst)
        packet = Packet(PacketKind.REQUEST, src_pid=delivery.sender,
                        dst_pid=effect.dst, txn_id=delivery.txn_id,
                        message=message, info={"forwarder": proc.pid})
        proc.state = ProcessState.WAITING
        self._transmit(packet, effect.dst.logical_host,
                       on_sent=lambda: self._advance(proc, value=None))
        return _BLOCKED

    # -- MoveTo / MoveFrom ------------------------------------------------------------

    def _locate_move_txn(self, proc: Process, other: Pid) -> Transaction:
        """Find the transaction authorizing a bulk move with ``other``.

        The mover must currently hold (have received and not yet replied to)
        a request whose sender is ``other``; V's rule that moves are only
        legal against a sender blocked on you falls out of that.
        """
        for delivery in proc.unreplied.values():
            if delivery.sender == other:
                txn = self.domain.find_transaction(delivery.txn_id, other)
                if txn is None:
                    raise NotAwaitingReply(
                        f"transaction {delivery.txn_id} from {other!r} is gone"
                    )
                return txn
        raise NotAwaitingReply(
            f"{proc.name!r} attempted a bulk move with {other!r}, "
            "which is not send-blocked on it"
        )

    def _do_move_from(self, proc: Process, effect: ipc.MoveFrom) -> Any:
        txn = self._locate_move_txn(proc, effect.src)
        if txn.expose is None:
            raise NotAwaitingReply(f"{effect.src!r} exposed no segment")
        data = txn.expose.read(effect.offset, effect.nbytes)  # may raise
        self.metrics.incr("ipc.movefrom_bytes", effect.nbytes)
        return self._bulk_transfer(proc, effect.src.logical_host,
                                   self.host_id, effect.nbytes, data)

    def _do_move_to(self, proc: Process, effect: ipc.MoveTo) -> Any:
        txn = self._locate_move_txn(proc, effect.dst)
        if txn.expose is None:
            raise NotAwaitingReply(f"{effect.dst!r} exposed no segment")
        txn.expose.write(effect.offset, effect.data)  # may raise
        self.metrics.incr("ipc.moveto_bytes", len(effect.data))
        return self._bulk_transfer(proc, self.host_id,
                                   effect.dst.logical_host, len(effect.data), None)

    def _bulk_transfer(self, proc: Process, src_host: int, dst_host: int,
                       nbytes: int, result: Any) -> Any:
        """Charge a bulk move and resume ``proc`` when it completes.

        Same-host moves are a bounded-cost copy; cross-host moves are a train
        of data packets paced at the host packet-write limit (see E2 notes in
        latency.py).  The data frames are put on the simulated wire so bus
        statistics and contention stay honest.
        """
        if src_host == dst_host:
            duration = self.latency.bulk_move_local(nbytes)
            proc.state = ProcessState.MOVE_BLOCKED
            self.engine.post(duration, self._advance, proc, result)
            return _BLOCKED
        packets = self.latency.bulk_packets(nbytes)
        per_packet = self.latency.bulk_move_remote(nbytes) / max(packets, 1)
        proc.state = ProcessState.MOVE_BLOCKED
        remaining = nbytes
        for index in range(packets):
            chunk = min(remaining, 1024)
            remaining -= chunk
            self.engine.post(
                per_packet * (index + 1) - self.latency.wire_time(chunk),
                self._emit_move_frame, src_host, dst_host, chunk,
            )
        self.engine.post(per_packet * packets, self._advance, proc, result)
        return _BLOCKED

    def _emit_move_frame(self, src_host: int, dst_host: int, chunk: int) -> None:
        packet = Packet(PacketKind.MOVE_DATA, src_pid=Pid(0), dst_pid=None,
                        txn_id=0, info={"data_bytes": chunk})
        frame = self._acquire_frame(
            src_host, dst_host, packet, packet.payload_bytes)
        if self.engine.profiling:
            self.engine.profile_count_message(packet.payload_bytes)
        self.ethernet.transmit(frame)

    # -- services -----------------------------------------------------------------

    def _do_set_pid(self, proc: Process, effect: ipc.SetPid) -> Any:
        self.registry.set_pid(effect.service, proc.pid, effect.scope)
        self.metrics.incr("services.registrations")
        if self.domain.tracer is not None:
            self._trace("svc", proc.name,
                        f"SetPid service={effect.service} scope={effect.scope.value}")
        return None

    def _do_get_pid(self, proc: Process, effect: ipc.GetPid) -> Any:
        if effect.scope is not Scope.REMOTE:
            local = self.registry.lookup_local(effect.service)
            if local is not None and self.find_process(local) is not None:
                self.metrics.incr("services.getpid_local_hits")
                return local
        if effect.scope is Scope.LOCAL:
            return None
        waiter_id = self._next_waiter_id()
        timeout = self.engine.schedule(self.config.getpid_timeout,
                                       self._getpid_timeout, waiter_id)
        self._getpid_waiters[waiter_id] = (proc, timeout,
                                           int(effect.service), 0)
        proc.state = ProcessState.WAITING
        packet = Packet(PacketKind.GETPID_QUERY, src_pid=proc.pid, dst_pid=None,
                        txn_id=0,
                        info={"service": int(effect.service), "waiter": waiter_id})
        self.metrics.incr("services.getpid_broadcasts")
        self._transmit(packet, BROADCAST)
        return _BLOCKED

    def _getpid_timeout(self, waiter_id: int) -> None:
        entry = self._getpid_waiters.get(waiter_id)
        if entry is None:
            return
        proc, __, service, attempts = entry
        if attempts < self.config.getpid_retries:
            # The query (or every response) may have been a lost frame; a
            # service that exists must not look absent because of one drop.
            # Re-broadcast under the same waiter id: a late response to an
            # earlier round still satisfies us.
            timeout = self.engine.schedule(self.config.getpid_timeout,
                                           self._getpid_timeout, waiter_id)
            self._getpid_waiters[waiter_id] = (proc, timeout, service,
                                               attempts + 1)
            packet = Packet(PacketKind.GETPID_QUERY, src_pid=proc.pid,
                            dst_pid=None, txn_id=0,
                            info={"service": service, "waiter": waiter_id})
            self.metrics.incr("services.getpid_retries")
            self._count("services.getpid_retries")
            self._transmit(packet, BROADCAST)
            return
        self._getpid_waiters.pop(waiter_id, None)
        self.metrics.incr("services.getpid_timeouts")
        self._advance(proc, value=None)

    # -- groups -------------------------------------------------------------------

    def _do_join_group(self, proc: Process, effect: ipc.JoinGroup) -> Any:
        self.domain.groups.join(effect.group_id, proc.pid)
        self.ethernet.join_group(self.host_id, GroupAddress(effect.group_id))
        return None

    def _do_leave_group(self, proc: Process, effect: ipc.LeaveGroup) -> Any:
        self.domain.groups.leave(effect.group_id, proc.pid)
        if not self.domain.groups.members_on_host(effect.group_id, self.host_id):
            self.ethernet.leave_group(self.host_id, GroupAddress(effect.group_id))
        return None

    def _do_group_send(self, proc: Process, effect: ipc.GroupSend) -> Any:
        txn = Transaction(txn_id=self._next_txn_id(), sender=proc.pid,
                          dst=proc.pid, message=effect.message,
                          sent_at=self.engine.now)
        proc.pending_txn = txn
        proc.state = ProcessState.SEND_BLOCKED
        self._outstanding[txn.txn_id] = txn
        self.metrics.incr("ipc.group_sends")
        timeout = self.engine.schedule(self.config.group_reply_timeout,
                                       self._group_send_timeout, txn)
        self._group_timeouts[txn.txn_id] = timeout
        # Local members (other than the sender) get a local delivery; the
        # whole same-tick burst goes into the queue as one batched entry.
        deliver = self._deliver_group_local
        self.engine.schedule_many(
            self._local_hop,
            [(deliver, (Transaction(txn_id=txn.txn_id, sender=proc.pid,
                                    dst=member, message=effect.message),))
             for member in self.domain.groups.members_on_host(
                 effect.group_id, self.host_id)
             if member != proc.pid])
        # Remote members are reached by one multicast frame.
        packet = Packet(PacketKind.GROUP_REQUEST, src_pid=proc.pid, dst_pid=None,
                        txn_id=txn.txn_id, message=effect.message,
                        info={"group": effect.group_id})
        self._transmit(packet, GroupAddress(effect.group_id))
        return _BLOCKED

    def _deliver_group_local(self, txn: Transaction) -> None:
        dst_proc = self.find_process(txn.dst)
        if dst_proc is None:
            return
        delivery = Delivery(message=txn.message, sender=txn.sender,
                            txn_id=txn.txn_id, via_group=True)
        self._enqueue_delivery(dst_proc, delivery)

    def _group_send_timeout(self, txn: Transaction) -> None:
        self._group_timeouts.pop(txn.txn_id, None)
        if txn.txn_id in self._outstanding:
            self.metrics.incr("ipc.group_send_timeouts")
            self._complete_local_txn(txn, Message.reply(ReplyCode.NO_SERVER))

    # -- misc ---------------------------------------------------------------------

    def _do_delay(self, proc: Process, effect: ipc.Delay) -> Any:
        proc.state = ProcessState.WAITING
        self.engine.post(effect.seconds, self._advance, proc, None)
        return _BLOCKED

    def _do_annotate(self, proc: Process, effect: ipc.Annotate) -> Any:
        """Zero-cost: enrich the hop span of a held transaction, if traced."""
        if self.obs is not None:
            span = self._hop_spans.get((effect.txn_id, proc.pid))
            if span is not None:
                if effect.append:
                    for key, value in effect.attrs.items():
                        span.append_attr(key, value)
                else:
                    span.attrs.update(effect.attrs)
        return None

    def _do_profile_enter(self, proc: Process, effect: ipc.ProfileEnter) -> Any:
        """Zero-cost: open a per-process attribution frame (see ipc)."""
        if self.engine.profiling:
            label = "phase:" + effect.label
            proc.profile_frames += (label,)
            self.engine.profile_push(label)
        return None

    def _do_profile_exit(self, proc: Process, effect: ipc.ProfileExit) -> Any:
        if self.engine.profiling and proc.profile_frames:
            label = proc.profile_frames[-1]
            proc.profile_frames = proc.profile_frames[:-1]
            self.engine.profile_pop(label)
        return None

    def _do_now(self, proc: Process, effect: ipc.Now) -> Any:
        return self.engine.now

    def _do_my_pid(self, proc: Process, effect: ipc.MyPid) -> Any:
        return proc.pid

    def _do_spawn(self, proc: Process, effect: ipc.Spawn) -> Any:
        child = self.spawn(effect.body, name=effect.name)
        return child.pid

    def _do_exit(self, proc: Process, effect: ipc.Exit) -> Any:
        proc.task.close()
        self._terminate(proc)
        return _BLOCKED

    # ------------------------------------------------------------ networking

    def _transmit(self, packet: Packet, dst, on_sent=None) -> None:
        """Charge send-side kernel CPU, then put one frame on the wire."""
        self.engine.post(self._kernel_cpu,
                         self._transmit_put, packet, dst, on_sent)

    def _transmit_put(self, packet: Packet, dst, on_sent) -> None:
        if self.crashed:
            return
        frame = self._acquire_frame(
            self.host_id, dst, packet, packet.payload_bytes)
        if self.engine.profiling:
            # One message out: bump the current stack's message/byte
            # totals, and charge the propagation (the arrival event the
            # ethernet schedules) to a wire frame under this phase.
            self.engine.profile_count_message(packet.payload_bytes)
            self.engine.profile_push("phase:wire")
            try:
                arrival = self.ethernet.transmit(frame)
            finally:
                self.engine.profile_pop("phase:wire")
        else:
            arrival = self.ethernet.transmit(frame)
        if on_sent is not None:
            self.engine.post_at(arrival, on_sent)

    def _on_frame(self, frame: Frame) -> None:
        if self.crashed:
            return
        packet = frame.payload
        if type(packet) is not Packet:
            return
        if packet.kind is PacketKind.MOVE_DATA:
            return  # pure timing/traffic; the move completion is scheduled
        self.engine.post(self._kernel_cpu,
                         self._handle_packet, packet, frame.src_host)

    def _handle_packet(self, packet: Packet, src_host: int) -> None:
        if self.crashed:
            return
        append = self._flight_append
        if append is not None:
            engine = self.engine
            src_pid = packet.src_pid
            dst_pid = packet.dst_pid
            append((engine._fire_seq, engine._now,
                    _FLIGHT_KINDS[packet.kind],
                    src_pid.value if src_pid is not None else 0,
                    dst_pid.value if dst_pid is not None else 0,
                    packet.txn_id or 0))
        handler = _PACKET_HANDLERS[packet.kind]
        handler(self, packet, src_host)

    def _on_request_packet(self, packet: Packet, src_host: int) -> None:
        assert packet.dst_pid is not None and packet.message is not None
        presence = self._presence.get(packet.txn_id)
        if (presence is not None and presence[0] == "forwarded"
                and packet.info.get("forwarder") is not None):
            # The forwarding chain re-entered a host it already passed
            # through (A forwarded the txn away; a later hop forwarded it
            # back to another process on A).  The stale "forwarded" marker
            # must not suppress the new leg as a duplicate -- that drops
            # the request on the floor while the sender's probes keep
            # finding live processes, a permanent black hole.  Only true
            # forward hops carry a forwarder pid; sender retransmissions
            # do not, and those still dup-suppress below.
            presence = None
        if presence is not None:
            # A copy of a request we already hold (retransmission or wire
            # duplicate).  The transaction is idempotent-at-most-once from
            # the receiver's perspective: drop the copy, keep the original.
            self.metrics.incr("ipc.dup_suppressed")
            self._count("ipc.dup_suppressed")
            if self.obs is not None:
                span = self._hop_spans.get((packet.txn_id, presence[1]))
                if span is not None:
                    span.append_attr("dup_suppressed", self.engine.now)
            return
        cached = self._reply_cache.get(packet.txn_id)
        if cached is not None and self._retransmit_enabled:
            # We already answered this transaction; the reply frame must
            # have been lost.  Replay it instead of re-executing anything.
            self.metrics.incr("ipc.dup_suppressed")
            self.metrics.incr("ipc.reply_resends")
            self._count("ipc.reply_resends")
            self._transmit(cached, packet.src_pid.logical_host)
            return
        dst_proc = self.find_process(packet.dst_pid)
        if dst_proc is None:
            nack = Packet(PacketKind.NACK, src_pid=packet.dst_pid,
                          dst_pid=packet.src_pid, txn_id=packet.txn_id,
                          message=Message.reply(ReplyCode.NONEXISTENT_PROCESS))
            self._transmit(nack, packet.src_pid.logical_host)
            return
        delivery = Delivery(message=packet.message, sender=packet.src_pid,
                            txn_id=packet.txn_id,
                            forwarder=packet.info.get("forwarder"))
        self._enqueue_delivery(dst_proc, delivery)

    def _on_reply_packet(self, packet: Packet, src_host: int) -> None:
        txn = self._outstanding.get(packet.txn_id)
        if txn is None:
            self.metrics.incr("ipc.duplicate_replies")
            return
        assert packet.message is not None
        self._complete_local_txn(txn, packet.message)

    def _on_probe_packet(self, packet: Packet, src_host: int) -> None:
        presence = self._presence.get(packet.txn_id)
        if presence is None:
            cached = self._reply_cache.get(packet.txn_id)
            if cached is not None and self._retransmit_enabled:
                # Transaction done; its reply frame was lost.  Replay.
                self.metrics.incr("ipc.reply_resends")
                self._count("ipc.reply_resends")
                self._transmit(cached, packet.src_pid.logical_host)
                return
            if (packet.dst_pid is not None
                    and self.find_process(packet.dst_pid) is not None):
                # The destination process is alive but we have no trace of
                # the transaction: the request frame itself was lost.  Tell
                # the sender so it can retransmit instead of (wrongly)
                # concluding the process is gone.
                response = Packet(PacketKind.PROBE_MISSING,
                                  src_pid=packet.dst_pid,
                                  dst_pid=packet.src_pid,
                                  txn_id=packet.txn_id)
                self._transmit(response, packet.src_pid.logical_host)
                return
            response = Packet(PacketKind.NACK, src_pid=packet.dst_pid or Pid(0),
                              dst_pid=packet.src_pid, txn_id=packet.txn_id,
                              message=Message.reply(ReplyCode.NONEXISTENT_PROCESS))
        elif presence[0] == "forwarded":
            response = Packet(PacketKind.PROBE_FORWARDED,
                              src_pid=packet.dst_pid or Pid(0),
                              dst_pid=packet.src_pid, txn_id=packet.txn_id,
                              info={"new_dst": presence[1]})
        else:
            response = Packet(PacketKind.PROBE_OK,
                              packet.dst_pid or Pid(0),
                              packet.src_pid, packet.txn_id)
        self.engine.post(self._kernel_cpu, self._transmit_put, response,
                         packet.src_pid.logical_host, None)

    def _on_probe_ok_packet(self, packet: Packet, src_host: int) -> None:
        txn = self._outstanding.get(packet.txn_id)
        if txn is not None:
            txn.probes_unanswered = 0
            # The responder holds the request: stop retransmitting it.  The
            # probe protocol takes over liveness from here.
            txn.acked = True

    def _on_probe_forwarded_packet(self, packet: Packet, src_host: int) -> None:
        txn = self._outstanding.get(packet.txn_id)
        if txn is not None:
            txn.dst = packet.info["new_dst"]
            txn.probes_unanswered = 0
            txn.acked = True

    def _on_probe_missing_packet(self, packet: Packet, src_host: int) -> None:
        txn = self._outstanding.get(packet.txn_id)
        if txn is None:
            return
        if self._retransmit_enabled:
            # The request never arrived; push a fresh copy now rather than
            # waiting out the backoff, and give the probe counter a fresh
            # start -- the peer did answer, so it is alive.
            txn.probes_unanswered = 0
            self._retransmit_now(txn)
        else:
            # Without retransmission the transaction cannot be salvaged.
            self.metrics.incr("ipc.send_timeouts")
            self._complete_local_txn(txn, Message.reply(ReplyCode.TIMEOUT))

    def _on_getpid_query_packet(self, packet: Packet, src_host: int) -> None:
        service = packet.info["service"]
        found = self.registry.lookup_remote(service)
        if found is not None and self.find_process(found) is not None:
            response = Packet(PacketKind.GETPID_RESPONSE, src_pid=found,
                              dst_pid=packet.src_pid, txn_id=0,
                              info={"waiter": packet.info["waiter"], "pid": found})
            self._transmit(response, src_host)
        else:
            # The cost the paper's Sec. 7 wants to eliminate: every host on
            # the wire examines and discards broadcast queries not for it.
            self.metrics.incr("services.broadcast_discards")

    def _on_getpid_response_packet(self, packet: Packet, src_host: int) -> None:
        entry = self._getpid_waiters.pop(packet.info["waiter"], None)
        if entry is None:
            self.metrics.incr("services.getpid_late_responses")
            return
        proc, timeout, __, __ = entry
        timeout.cancel()
        self._advance(proc, value=packet.info["pid"])

    def _on_group_request_packet(self, packet: Packet, src_host: int) -> None:
        assert packet.message is not None
        group_id = packet.info["group"]
        for member in self.domain.groups.members_on_host(group_id, self.host_id):
            dst_proc = self.find_process(member)
            if dst_proc is None:
                continue
            delivery = Delivery(message=packet.message, sender=packet.src_pid,
                                txn_id=packet.txn_id, via_group=True)
            self._enqueue_delivery(dst_proc, delivery)

    # ---------------------------------------------------------------- probes

    def _schedule_probe(self, txn: Transaction) -> None:
        if self.engine.profiling:
            self.engine.profile_push("phase:probe")
            try:
                txn.probe_event = self.engine.schedule(
                    self._probe_interval, self._probe_fire, txn)
            finally:
                self.engine.profile_pop("phase:probe")
            return
        txn.probe_event = self.engine.schedule(self._probe_interval,
                                               self._probe_fire, txn)

    def _probe_fire(self, txn: Transaction) -> None:
        if txn.txn_id not in self._outstanding:
            return
        if txn.probes_unanswered >= self._max_failed_probes:
            self.metrics.incr("ipc.send_timeouts")
            self._trace("ipc", f"txn{txn.txn_id}",
                        f"abandoned after {txn.probes_unanswered} failed probes")
            self._complete_local_txn(txn, Message.reply(ReplyCode.TIMEOUT))
            return
        txn.probes_unanswered += 1
        dst_host = txn.dst.logical_host
        if dst_host == self.host_id:
            presence = self._presence.get(txn.txn_id)
            if presence is not None:
                if presence[0] == "forwarded":
                    txn.dst = presence[1]
                txn.probes_unanswered = 0
        else:
            probe = Packet(PacketKind.PROBE, txn.sender, txn.dst, txn.txn_id)
            self.engine.post(self._kernel_cpu,
                             self._transmit_put, probe, dst_host, None)
            self._m_probes.value += 1
        self._schedule_probe(txn)

    # --------------------------------------------------------- retransmission

    def _schedule_retransmit(self, txn: Transaction, interval: float) -> None:
        if self.engine.profiling:
            # The backoff wait and everything the timer causes (the re-sent
            # frames) are attributed to the retransmission phase.
            self.engine.profile_push("phase:retransmit")
            try:
                txn.retransmit_event = self.engine.schedule(
                    interval, self._retransmit_fire, txn, interval)
            finally:
                self.engine.profile_pop("phase:retransmit")
            return
        txn.retransmit_event = self.engine.schedule(
            interval, self._retransmit_fire, txn, interval)

    def _retransmit_fire(self, txn: Transaction, interval: float) -> None:
        if txn.txn_id not in self._outstanding or txn.acked:
            return
        next_interval = min(interval * self.config.retransmit_backoff,
                            self.config.retransmit_cap)
        if txn.dst.is_local_to(self.host_id):
            # Local delivery is reliable; keep the timer parked at the cap
            # in case a Forward moves the transaction onto the wire.
            self._schedule_retransmit(txn, self.config.retransmit_cap)
            return
        self._retransmit_now(txn)
        self._schedule_retransmit(txn, next_interval)

    def _retransmit_now(self, txn: Transaction) -> None:
        """Push one fresh copy of an outstanding request onto the wire."""
        packet = Packet(PacketKind.REQUEST, txn.sender, txn.dst,
                        txn.txn_id, txn.message)
        txn.retransmits += 1
        self.metrics.incr("ipc.retransmits")
        self._count("ipc.retransmits")
        if self.obs is not None:
            span = self._txn_spans.get(txn.txn_id)
            if span is not None:
                span.append_attr("retransmit", self.engine.now)
        if self.domain.tracer is not None:
            self._trace("ipc", f"txn{txn.txn_id}",
                        f"retransmit #{txn.retransmits} -> {txn.dst!r}")
        if self.engine.profiling:
            # Also reached outside the timer (PROBE_MISSING): make sure the
            # fresh copy is charged to the retransmission phase regardless.
            self.engine.profile_push("phase:retransmit")
            try:
                self._transmit(packet, txn.dst.logical_host)
            finally:
                self.engine.profile_pop("phase:retransmit")
            return
        self._transmit(packet, txn.dst.logical_host)

    def _cache_reply(self, txn_id: int, packet: Packet) -> None:
        """Remember the reply sent to a remote sender, for loss replay."""
        self._reply_cache[txn_id] = packet
        self._reply_cache.move_to_end(txn_id)
        while len(self._reply_cache) > self.config.reply_cache_entries:
            self._reply_cache.popitem(last=False)

    # ----------------------------------------------------------- introspection

    def _count(self, name: str) -> None:
        """Bump a per-host counter (zero simulated cost; plain dict incr)."""
        self.counters[name] += 1

    @property
    def uptime(self) -> float:
        """Simulated seconds since boot (or last restart)."""
        return self.engine.now - self.started_at

    def snapshot(self) -> dict:
        """JSON-ready kernel state for the ``[obs]`` stat server.

        Capturing this is zero-cost in simulated time; *reading* it goes
        through the normal V I/O path and is charged like any other traffic.
        Also refreshes the ``host.uptime_seconds`` gauge in the domain
        metrics registry so offline metric exports carry it too.
        """
        if self.obs is not None:
            self.obs.registry.gauge(
                "host.uptime_seconds", host=self.name).set(self.uptime)
        return {
            "host": self.name,
            "host_id": self.host_id,
            "time": self.engine.now,
            "crashed": self.crashed,
            "uptime_seconds": self.uptime,
            "process_count": len(self.processes),
            "outstanding_txns": len(self._outstanding),
            "counters": dict(sorted(self.counters.items())),
            "registrations": self.registry.snapshot(),
        }

    def process_snapshot(self) -> list[dict]:
        """JSON-ready process table (``[obs]/hosts/<host>/processes``)."""
        records = []
        for proc in self.processes.values():
            records.append({
                "pid": proc.pid.value,
                "local_id": proc.pid.local_id,
                "name": proc.name,
                "state": proc.state.name.lower(),
                "queued": len(proc.msg_queue),
                "unreplied": len(proc.unreplied),
            })
        records.sort(key=lambda r: r["local_id"])
        return records

    # ----------------------------------------------------------------- trace

    def _trace(self, category: str, subject: str, detail: str) -> None:
        tracer = self.domain.tracer
        if tracer is not None:
            tracer.record(self.engine.now, category, f"{self.name}:{subject}", detail)


_EFFECT_HANDLERS = {
    ipc.Send: Host._do_send,
    ipc.Receive: Host._do_receive,
    ipc.Reply: Host._do_reply,
    ipc.Forward: Host._do_forward,
    ipc.MoveFrom: Host._do_move_from,
    ipc.MoveTo: Host._do_move_to,
    ipc.SetPid: Host._do_set_pid,
    ipc.GetPid: Host._do_get_pid,
    ipc.JoinGroup: Host._do_join_group,
    ipc.LeaveGroup: Host._do_leave_group,
    ipc.GroupSend: Host._do_group_send,
    ipc.Delay: Host._do_delay,
    ipc.Annotate: Host._do_annotate,
    ipc.ProfileEnter: Host._do_profile_enter,
    ipc.ProfileExit: Host._do_profile_exit,
    ipc.Now: Host._do_now,
    ipc.MyPid: Host._do_my_pid,
    ipc.Spawn: Host._do_spawn,
    ipc.Exit: Host._do_exit,
}

#: CSNH phase labels for the profiler: the frame pushed while the effect's
#: handler runs (and inherited by everything it schedules).  Delay has no
#: phase on purpose -- it models the *process's own* CPU (a prefix parse, a
#: server handler), which belongs to the process/service frames, not to a
#: kernel protocol phase.
_EFFECT_PHASES = {
    ipc.Send: "phase:send",
    ipc.Reply: "phase:reply",
    ipc.Forward: "phase:forward_hop",
    ipc.MoveTo: "phase:move_to",
    ipc.MoveFrom: "phase:move_from",
    ipc.GetPid: "phase:getpid",
    ipc.GroupSend: "phase:group_send",
}

#: Flight-record kind codes for arriving packets: PACKET_BASE + definition
#: index, matching repro.obs.flight's static name table (pinned by
#: tests/obs/test_flight.py), so the recorder's packet site pays a dict
#: hit, not an enum-name lowering.
_FLIGHT_KINDS = {kind: _PACKET_BASE + index
                 for index, kind in enumerate(PacketKind)}

_PACKET_HANDLERS = {
    PacketKind.REQUEST: Host._on_request_packet,
    PacketKind.REPLY: Host._on_reply_packet,
    PacketKind.NACK: Host._on_reply_packet,
    PacketKind.PROBE: Host._on_probe_packet,
    PacketKind.PROBE_OK: Host._on_probe_ok_packet,
    PacketKind.PROBE_FORWARDED: Host._on_probe_forwarded_packet,
    PacketKind.PROBE_MISSING: Host._on_probe_missing_packet,
    PacketKind.GETPID_QUERY: Host._on_getpid_query_packet,
    PacketKind.GETPID_RESPONSE: Host._on_getpid_response_packet,
    PacketKind.GROUP_REQUEST: Host._on_group_request_packet,
}
