"""A V domain: hosts, the Ethernet, and the simulated clock (paper Sec. 4.1).

"A V domain is a set of logical hosts running the distributed V kernel,
usually machines connected by one local network, over which kernel operations
are transparent with respect to machine boundaries.  A V domain is basically
one V-System installation."

:class:`Domain` is the top-level simulation object benchmarks and examples
build: it owns the engine, metrics, RNG, the Ethernet, the group registry,
and the hosts.  Convenience helpers create hosts and run the clock.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

from repro.kernel.config import DEFAULT_CONFIG, KernelConfig
from repro.kernel.groups import GroupRegistry
from repro.kernel.host import Host
from repro.kernel.pids import Pid
from repro.kernel.process import Process, Transaction
from repro.net.ethernet import Ethernet
from repro.net.latency import STANDARD_3MBIT, LatencyModel, WireFaultModel
from repro.sim.engine import Engine
from repro.sim.metrics import Metrics
from repro.sim.rng import DeterministicRng
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.obs.profile import Profiler


class Domain:
    """One V-System installation, fully simulated."""

    def __init__(
        self,
        latency: LatencyModel = STANDARD_3MBIT,
        seed: int = 0,
        config: KernelConfig = DEFAULT_CONFIG,
        tracer: Optional[Tracer] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.engine = Engine()
        #: Observability bundle (span collector + metrics registry), or None.
        #: With obs attached the kernel emits a span tree per message
        #: transaction (see repro.obs); without it no tracing branch runs.
        self.obs = obs
        self.metrics = Metrics(
            registry=obs.registry if obs is not None else None)
        self.rng = DeterministicRng(seed)
        self.latency = latency
        self.config = config
        self.tracer = tracer
        if obs is not None and tracer is not None:
            # Let the span exporter report the event ring buffer's drop
            # count alongside the spans (see repro.obs.export).
            obs.tracer = tracer
        if obs is not None:
            # Run-level comparability facts for JSONL meta records: the rng
            # seed and (via the engine link) the event count at export time.
            # A bundle shared across domains reports its newest domain.
            obs.run_seed = seed
            obs.engine = self.engine
        #: Domain-lifetime attribution profiler (see enable_profiler), or
        #: None.  Scoped profiles via profile() work regardless.
        self.profiler: Optional["Profiler"] = None
        #: Continuous-telemetry collector (see enable_telemetry), or None.
        #: The kernel's per-transaction latency hook gates on this, so the
        #: disabled path costs one attribute read per completed send.
        self.telemetry = None
        #: Flight recorder (see repro.obs.flight.enable_flight_recorder), or
        #: None.  Kernel record sites gate on this, same discipline as the
        #: telemetry hook: one attribute read per site when disabled.
        self.flight = None
        #: Coherence probe (see repro.obs.audit.enable_coherence), or None.
        #: Name-state code (shard servers/resolvers) gates on this to emit
        #: invalidation-lag / staleness / lease-churn samples; the disabled
        #: path is one attribute read, and the armed probe is pure
        #: bookkeeping -- no events, no rng -- so simulated time is
        #: identical either way.
        self.coherence = None
        #: host_id -> ShardResolver, registered by ``ShardCluster.resolver
        #: (host=...)`` so the stat server can serve
        #: ``[obs]/hosts/<h>/coherence`` and the auditor can walk the fleet.
        self.shard_resolvers: dict[int, object] = {}
        #: Every ShardCluster built over this domain (authoritative shard
        #: state for the coherence auditor's cross-checks).
        self.shard_clusters: list = []
        #: Per-domain transaction / getpid-waiter id streams.  Domain-local
        #: (not process-global) so ids are pure functions of the run: two
        #: same-seed domains allocate identical txn ids, which is what makes
        #: flight records comparable across runs (repro.obs.flight).
        self._txn_counter = itertools.count(1)
        self._waiter_counter = itertools.count(1)
        self.ethernet = Ethernet(self.engine, latency, self.metrics, obs=obs)
        self.groups = GroupRegistry()
        self.hosts: dict[int, Host] = {}
        self._next_host_id = 1
        #: The [obs] namespace manager once enable_obs_namespace() ran, else
        #: None.  Kept here so enabling twice is idempotent.
        self.obs_namespace = None
        #: host_id -> client NameCache, registered by the runtime layer so
        #: the stat server can serve [obs]/hosts/<h>/namecache.
        self.name_caches: dict[int, object] = {}
        #: Callbacks fired with each newly created Host (the obs namespace
        #: uses this to cover late-created machines with stat servers).
        self._host_created_listeners: list[Callable[[Host], None]] = []
        #: Callbacks fired when a crashed Host restarts.  A crash kills the
        #: machine's servers, so anything that keeps a per-host service
        #: running (the obs namespace's stat servers) must respawn it here.
        self._host_restarted_listeners: list[Callable[[Host], None]] = []
        #: Callbacks fired the instant a Host fail-stops (:meth:`Host.crash`).
        #: Anything holding domain-level references on the dead machine's
        #: behalf -- its name cache's subscription on the pid-removal hub,
        #: a shard cluster's replica membership -- must sever them here, or
        #: notices keep flowing to dead state forever.
        self._host_crashed_listeners: list[Callable[[Host], None]] = []
        #: (task name, exception) for every process that died with an error.
        self.failures: list[tuple[str, BaseException]] = []
        #: Domain-wide registration-removal listeners: every host's service
        #: registry reports removals here (see Host), so a binding cache can
        #: watch one hub instead of every kernel table.
        self._pid_removal_listeners: list[Callable[[Pid], None]] = []

    # ------------------------------------------------------------ wire faults

    def set_wire_faults(self, faults: Optional[WireFaultModel]) -> None:
        """Install (or clear) probabilistic frame faults on the Ethernet.

        The fault draws come from this domain's seeded rng (its own
        ``net.faults`` sub-stream), so two runs with the same seed see the
        same frames dropped, duplicated, and delayed.
        """
        self.ethernet.set_fault_model(faults, self.rng.stream("net.faults"))

    # -------------------------------------------------- registration removal

    def on_pid_removed(self, callback: Callable[[Pid], None]) -> None:
        """Subscribe to service-registration removals anywhere in the domain."""
        if callback not in self._pid_removal_listeners:
            self._pid_removal_listeners.append(callback)

    def off_pid_removed(self, callback: Callable[[Pid], None]) -> None:
        """Unsubscribe a removal listener (no-op when not subscribed).

        The client name cache subscribes here for its host's lifetime; the
        crash hook calls this so a dead machine's cache stops hearing
        notices (the subscription leak the chaos harness pins).
        """
        try:
            self._pid_removal_listeners.remove(callback)
        except ValueError:
            pass

    def _notify_pid_removed(self, pid: Pid) -> None:
        for callback in list(self._pid_removal_listeners):
            callback(pid)

    def on_host_created(self, callback: Callable[[Host], None]) -> None:
        """Subscribe to future :meth:`create_host` calls."""
        if callback not in self._host_created_listeners:
            self._host_created_listeners.append(callback)

    def on_host_restarted(self, callback: Callable[[Host], None]) -> None:
        """Subscribe to crashed hosts coming back up (:meth:`Host.restart`)."""
        if callback not in self._host_restarted_listeners:
            self._host_restarted_listeners.append(callback)

    def _notify_host_restarted(self, host: Host) -> None:
        for callback in list(self._host_restarted_listeners):
            callback(host)

    def on_host_crashed(self, callback: Callable[[Host], None]) -> None:
        """Subscribe to hosts fail-stopping (:meth:`Host.crash`).

        Fires after the dead kernel's own tables are cleared (so listeners
        see the post-crash state) and synchronously within the crash event,
        which is what lets a shard cluster promote a replacement owner
        before any in-flight lookup times out against the corpse.
        """
        if callback not in self._host_crashed_listeners:
            self._host_crashed_listeners.append(callback)

    def _notify_host_crashed(self, host: Host) -> None:
        for callback in list(self._host_crashed_listeners):
            callback(host)

    # ----------------------------------------------------------------- hosts

    def create_host(self, name: str | None = None) -> Host:
        """Add a machine to the domain."""
        host_id = self._next_host_id
        self._next_host_id += 1
        host = Host(self, host_id, name or f"host{host_id}")
        self.hosts[host_id] = host
        for callback in list(self._host_created_listeners):
            callback(host)
        return host

    def create_hosts(self, count: int, prefix: str = "host") -> list[Host]:
        return [self.create_host(f"{prefix}{i + 1}") for i in range(count)]

    def host_of(self, pid: Pid) -> Optional[Host]:
        return self.hosts.get(pid.logical_host)

    def find_process(self, pid: Pid) -> Optional[Process]:
        host = self.host_of(pid)
        return host.find_process(pid) if host is not None else None

    def find_transaction(self, txn_id: int, sender: Pid) -> Optional[Transaction]:
        """Locate an outstanding transaction at its sender's kernel.

        Used by the bulk-move validation path; the asyncio transport does the
        same check with an explicit kernel-to-kernel exchange.
        """
        host = self.host_of(sender)
        if host is None:
            return None
        return host._outstanding.get(txn_id)

    # ------------------------------------------------------------- profiling

    def profile(self) -> "Profiler":
        """A scoped attribution profiler: ``with domain.profile() as prof:``.

        Attaches on enter, detaches on exit; zero simulated cost (see
        :mod:`repro.obs.profile`).  Multiple scoped profilers (and the
        domain-lifetime one) can be active at once.
        """
        from repro.obs.profile import Profiler

        return Profiler(engine=self.engine)

    def enable_profiler(self) -> "Profiler":
        """Attach a domain-lifetime profiler (idempotent).

        The ``[obs]`` name space serves its totals live as
        ``hosts/<host>/profile``; :func:`repro.servers.statserver.
        enable_obs_namespace` calls this so those names are never empty.
        """
        if self.profiler is None:
            from repro.obs.profile import Profiler

            self.profiler = Profiler(engine=self.engine)
            self.engine.attach_profiler(self.profiler)
        return self.profiler

    def enable_telemetry(self, interval: float | None = None,
                         rules=None, capacity: int | None = None):
        """Attach and arm a continuous-telemetry collector (idempotent).

        Samples every host's counters into ring-buffer time series at
        ``interval`` simulated seconds and evaluates the SLO watchdog
        ``rules`` at each tick (default: :func:`repro.obs.telemetry.
        default_watchdogs`).  The ``[obs]`` name space serves the series as
        ``hosts/<host>/timeseries/<metric>`` and the alert log as
        ``fleet/alerts``.  Sampling is zero simulated cost; the collector
        parks itself once the event queue quiesces so ``run()`` still
        drains.
        """
        if self.telemetry is None:
            from repro.obs.telemetry import (
                DEFAULT_CAPACITY,
                DEFAULT_INTERVAL,
                TelemetryCollector,
                default_watchdogs,
            )

            self.telemetry = TelemetryCollector(
                self,
                interval=DEFAULT_INTERVAL if interval is None else interval,
                capacity=DEFAULT_CAPACITY if capacity is None else capacity,
                rules=default_watchdogs() if rules is None else rules)
            self.telemetry.start()
        return self.telemetry

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        return self.engine.now

    def run(self, until: float | None = None,
            max_events: int | None = 5_000_000) -> None:
        """Run the simulation until the event queue drains (or ``until``)."""
        self.engine.run(until=until, max_events=max_events)

    def run_for(self, duration: float) -> None:
        self.engine.run_for(duration)

    def run_until(self, predicate: Callable[[], bool],
                  deadline: float = 3600.0, step: float = 0.001) -> None:
        """Run until ``predicate()`` is true (checked between events)."""
        while not predicate():
            if self.engine.now > deadline:
                raise TimeoutError(
                    f"predicate not satisfied by simulated t={deadline}s"
                )
            if not self.engine.step():
                break

    def check_healthy(self) -> None:
        """Raise if any process died with an exception (test helper)."""
        if self.failures:
            name, exc = self.failures[0]
            raise AssertionError(
                f"{len(self.failures)} process(es) failed; first: {name}: {exc!r}"
            ) from exc
