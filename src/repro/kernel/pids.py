"""Structured process identifiers (paper Sec. 4.1, Figure 2).

A V pid is a 32-bit value split into two 16-bit subfields::

    +--------------------+--------------------------+
    |   logical host     |  local process identifier |
    +--------------------+--------------------------+

The structure buys three things the paper calls out explicitly:

1. *Efficient location*: the logical-host field maps to a host address, so a
   message can be routed without any lookup service.
2. *Independent allocation*: each logical host generates unique pids without
   coordination.
3. *Cheap locality test*: whether a pid is local is a field comparison --
   "an important issue for some servers."

Pids are the only absolute names in a V domain; everything else is relative
to a pid.  They are spatially unique but may be reused in time; the allocator
maximizes time-before-reuse (Sec. 4.1 footnote).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Field widths and masks.
LOGICAL_HOST_BITS = 16
LOCAL_ID_BITS = 16
LOGICAL_HOST_MAX = (1 << LOGICAL_HOST_BITS) - 1
LOCAL_ID_MAX = (1 << LOCAL_ID_BITS) - 1

#: Reserved logical-host value used to form *logical pids* for generic
#: services (the (logical-pid, well-known-context) bindings of Sec. 6).
LOGICAL_SERVICE_HOST = LOGICAL_HOST_MAX

#: Local id 0 is never allocated to a real process.
NULL_LOCAL_ID = 0


@dataclass(frozen=True, order=True)
class Pid:
    """A 32-bit V process identifier.

    The subfields are unpacked once at construction: pids are created
    rarely (allocation, wire decode) but their host field is consulted on
    every routing decision, so ``logical_host``/``local_id`` are plain
    attributes rather than computed properties.  Both are excluded from
    equality/ordering/repr -- they are pure functions of ``value``.
    """

    value: int
    logical_host: int = field(init=False, repr=False, compare=False)
    local_id: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        value = self.value
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError(f"pid out of 32-bit range: {value:#x}")
        object.__setattr__(self, "logical_host", value >> LOCAL_ID_BITS)
        object.__setattr__(self, "local_id", value & LOCAL_ID_MAX)

    @classmethod
    def make(cls, logical_host: int, local_id: int) -> "Pid":
        if not 0 <= logical_host <= LOGICAL_HOST_MAX:
            raise ValueError(f"logical host out of range: {logical_host}")
        if not 0 <= local_id <= LOCAL_ID_MAX:
            raise ValueError(f"local id out of range: {local_id}")
        return cls((logical_host << LOCAL_ID_BITS) | local_id)

    def is_local_to(self, logical_host: int) -> bool:
        """The O(1) locality test the pid structure exists to provide."""
        return self.logical_host == logical_host

    @property
    def is_logical_service(self) -> bool:
        """True for logical pids that name a *service* rather than a process."""
        return self.logical_host == LOGICAL_SERVICE_HOST

    def __repr__(self) -> str:
        if self.is_logical_service:
            return f"Pid(service:{self.local_id})"
        return f"Pid({self.logical_host}.{self.local_id})"


NULL_PID = Pid(0)


def logical_service_pid(service_id: int) -> Pid:
    """Build the logical pid naming a generic service (Sec. 6)."""
    return Pid.make(LOGICAL_SERVICE_HOST, service_id)


class PidAllocator:
    """Per-host allocator of local process identifiers.

    Allocation starts from a random point (V pids "are always allocated
    randomly", Sec. 4.2) and then walks the 16-bit space, skipping live ids,
    so a freed id is not reused until the allocator wraps -- maximizing
    time-before-reuse as the paper prescribes.
    """

    def __init__(self, logical_host: int, start: int = 1) -> None:
        if not 1 <= logical_host <= LOGICAL_HOST_MAX:
            raise ValueError(f"logical host out of range: {logical_host}")
        if logical_host == LOGICAL_SERVICE_HOST:
            raise ValueError("logical-service host id is reserved")
        self.logical_host = logical_host
        self._next = max(1, start & LOCAL_ID_MAX)
        self._live: set[int] = set()

    def allocate(self) -> Pid:
        if len(self._live) >= LOCAL_ID_MAX:
            raise RuntimeError(f"host {self.logical_host}: local pid space exhausted")
        local = self._next
        while local in self._live or local == NULL_LOCAL_ID:
            local = (local + 1) & LOCAL_ID_MAX
        self._next = (local + 1) & LOCAL_ID_MAX
        self._live.add(local)
        return Pid.make(self.logical_host, local)

    def release(self, pid: Pid) -> None:
        if pid.logical_host != self.logical_host:
            raise ValueError(f"{pid!r} does not belong to host {self.logical_host}")
        self._live.discard(pid.local_id)

    @property
    def live_count(self) -> int:
        return len(self._live)
