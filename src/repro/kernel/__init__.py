"""The distributed V kernel substrate.

The naming paper (Sec. 3) builds on the distributed V kernel: message
transactions between processes (*Send-Receive-Reply*), message *forwarding*,
bulk data movement (*MoveTo/MoveFrom*), structured 32-bit process identifiers,
and kernel-level service registration (*SetPid/GetPid*) with broadcast lookup.
This package implements all of it over the simulated Ethernet.

Modules:

- :mod:`repro.kernel.pids` -- structured pids (logical host | local id).
- :mod:`repro.kernel.messages` -- 32-byte messages, request/reply codes, and
  kernel packets.
- :mod:`repro.kernel.ipc` -- the effect vocabulary processes yield
  (``Send``, ``Receive``, ``Reply``, ``Forward``, ``MoveTo``, ...).
- :mod:`repro.kernel.process` -- kernel process objects and state.
- :mod:`repro.kernel.services` -- SetPid/GetPid registry, scopes, service ids.
- :mod:`repro.kernel.groups` -- process groups and group Send (Sec. 7).
- :mod:`repro.kernel.host` -- one machine: kernel tables + effect interpreter.
- :mod:`repro.kernel.domain` -- a V domain: hosts + Ethernet + clock.
"""

from repro.kernel.domain import Domain
from repro.kernel.host import Host
from repro.kernel.ipc import (
    Delay,
    Forward,
    GetPid,
    GroupSend,
    JoinGroup,
    LeaveGroup,
    MoveFrom,
    MoveTo,
    Now,
    Receive,
    Reply,
    Segment,
    Send,
    SetPid,
    Spawn,
)
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import Scope, ServiceId

__all__ = [
    "Domain",
    "Host",
    "Pid",
    "Message",
    "RequestCode",
    "ReplyCode",
    "Scope",
    "ServiceId",
    "Send",
    "Receive",
    "Reply",
    "Forward",
    "MoveTo",
    "MoveFrom",
    "Delay",
    "SetPid",
    "GetPid",
    "JoinGroup",
    "LeaveGroup",
    "GroupSend",
    "Now",
    "Spawn",
    "Segment",
]
