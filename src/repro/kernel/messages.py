"""Messages, request/reply codes, and kernel packets (paper Sec. 3.2).

V request messages are 32-byte short messages whose first 16-bit field is the
*request code* -- a tag that determines the format of the rest of the message,
"similar to tag fields in Pascal variant records."  Reply messages carry a
*reply code* (usually one of a set of standard system replies) in the same
position.

:class:`Message` models the short message as a code plus named fields; the
wire encoding in :mod:`repro.net.wire` enforces the 32-byte budget.  A message
may carry an *appended segment* of bytes (how CSnames and read/write data
travel with a request or reply); the segment is charged on the wire at the
size of the transported buffer.

:class:`Packet` is the kernel-to-kernel envelope: requests, replies, probe
traffic for failure detection, and GetPid broadcast queries all travel as
packets on the Ethernet.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.kernel.pids import Pid
from repro.net.latency import SHORT_MESSAGE_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.span import SpanContext


class RequestCode(enum.IntEnum):
    """Standard system request codes.

    Ranges: ``0x01xx`` kernel-adjacent utility, ``0x02xx`` the V I/O protocol,
    ``0x03xx`` the name-handling protocol (Sec. 5.7), ``0x04xx`` and up are
    server-specific operations registered by individual servers.
    """

    # -- utility -----------------------------------------------------------
    GET_TIME = 0x0101
    SET_TIME = 0x0102

    # -- V I/O protocol (Sec. 3.2) ------------------------------------------
    CREATE_INSTANCE = 0x0201
    QUERY_INSTANCE = 0x0202
    READ_INSTANCE = 0x0203
    WRITE_INSTANCE = 0x0204
    RELEASE_INSTANCE = 0x0205
    SET_INSTANCE_OWNER = 0x0206

    # -- name-handling protocol (Sec. 5) -------------------------------------
    # CSname requests: carry the standard CSname header fields.
    OPEN_FILE = 0x0301            # open a file-like object by CSname
    CREATE_FILE = 0x0302
    DELETE_NAME = 0x0303
    RENAME_OBJECT = 0x0304
    QUERY_NAME = 0x0305           # get an object description by CSname
    MODIFY_NAME = 0x0306          # overwrite an object description by CSname
    NAME_TO_CONTEXT = 0x0307      # map a CSname naming a context -> (pid, ctx)
    OPEN_DIRECTORY = 0x0308       # open a context directory as a file
    CREATE_CONTEXT = 0x0309       # make a new sub-context (mkdir)
    DELETE_CONTEXT = 0x030A
    ADD_CONTEXT_NAME = 0x030B     # optional: define a name for a context
    DELETE_CONTEXT_NAME = 0x030C  # optional: remove such a definition
    # Non-CSname naming requests (inverse mapping, Sec. 5.7):
    CONTEXT_TO_NAME = 0x0310      # (pid, context-id) -> CSname
    INSTANCE_TO_NAME = 0x0311     # (pid, instance-id) -> CSname

    # -- server-specific bases ------------------------------------------------
    PRINT_JOB = 0x0401
    PRINT_STATUS = 0x0402
    TCP_CONNECT = 0x0411
    TCP_DISCONNECT = 0x0412
    MAIL_DELIVER = 0x0421
    MAIL_CHECK = 0x0422
    LOAD_PROGRAM = 0x0431
    RUN_PROGRAM = 0x0432
    KILL_PROGRAM = 0x0433
    RAISE_EXCEPTION = 0x0441
    TERMINAL_CREATE = 0x0451
    TERMINAL_DRAW = 0x0452
    # -- centralized-baseline name server ops (Sec. 2.1 model, for E8) --------
    NS_REGISTER = 0x0461
    NS_LOOKUP = 0x0462
    NS_UNREGISTER = 0x0463
    NS_LIST = 0x0464
    # -- centralized-baseline object servers (objects named by UID only) ------
    OBJ_CREATE = 0x0471
    OBJ_DELETE = 0x0472
    OBJ_OPEN = 0x0473
    OBJ_QUERY = 0x0474
    OBJ_LIST = 0x0475
    # -- sharded replicated prefix service (repro.core.shard) -----------------
    SHARD_FETCH = 0x0481       # replica/owner refresh of one leased binding
    SHARD_SYNC = 0x0482        # owner -> replica: install a leased binding
    SHARD_INVALIDATE = 0x0483  # owner -> replica: drop a binding
    SHARD_MAP = 0x0484         # fetch the current versioned shard map
    SHARD_PULL = 0x0485        # rejoining replica <- peer: bulk table transfer


class ReplyCode(enum.IntEnum):
    """Standard system reply codes (Sec. 3.2)."""

    OK = 0x0000
    NOT_FOUND = 0x0001            # no such name/object in this context
    NONEXISTENT_PROCESS = 0x0002  # kernel: destination process does not exist
    NO_PERMISSION = 0x0003
    ILLEGAL_REQUEST = 0x0004      # server does not implement the operation
    INVALID_CONTEXT = 0x0005      # context identifier not valid on this server
    BAD_NAME = 0x0006             # syntactically unacceptable CSname
    NOT_A_CONTEXT = 0x0007        # name resolved to a leaf where a context was needed
    NAME_EXISTS = 0x0008
    CONTEXT_NOT_EMPTY = 0x0009
    END_OF_FILE = 0x000A
    BAD_INSTANCE = 0x000B
    NO_SERVER = 0x000C            # GetPid failed / no server for prefix
    TIMEOUT = 0x000D              # transaction abandoned after failed probes
    RETRY = 0x000E
    DEVICE_ERROR = 0x000F
    BUSY = 0x0010
    NOT_SUPPORTED = 0x0011
    BAD_ARGS = 0x0012
    MODE_ERROR = 0x0013           # I/O: operation not allowed by open mode
    INCONSISTENT = 0x0014         # baseline: registry disagrees with the server


def code_name(code: int) -> str:
    """Symbolic name for a request/reply code (hex for unknown codes)."""
    try:
        return RequestCode(code).name
    except ValueError:
        try:
            return ReplyCode(code).name
        except ValueError:
            return f"{code:#06x}"


@dataclass(slots=True, init=False)
class Message:
    """A V short message: request/reply code + named fields (+ segment).

    ``fields`` is the variant part whose layout the code determines.  The
    wire encoding packs it into the 32-byte short message; the simulation
    charges exactly :data:`SHORT_MESSAGE_BYTES` for it regardless of content.

    ``segment`` is an appended byte string (CSnames, read/write data).  On
    the wire it occupies ``segment_wire_bytes``: the maximum of its length
    and ``segment_buffer`` -- V shipped fixed-size buffers for names, which
    is what makes remote Open cost what it costs (see latency.py).

    ``trace`` is the observability propagation token (see
    :mod:`repro.obs.span`): pure metadata, never charged on the wire.  The
    kernel rewrites it at each hop so span trees follow ``Forward`` chains;
    a real kernel would pack the three ids into the short-message header.

    ``__init__`` is hand-written (``init=False``): messages are built once
    per IPC hop, and the generated dataclass initializer plus a
    ``__post_init__`` costs several times the attribute stores it performs.
    Equality and repr still come from the dataclass machinery.
    """

    code: int
    fields: dict[str, Any] = field(default_factory=dict)
    segment: Optional[bytes] = None
    segment_buffer: int = 0
    trace: Optional["SpanContext"] = None
    #: Total wire size.  ``segment``/``segment_buffer`` are fixed after
    #: construction (only ``trace`` is rewritten per hop, and it is never
    #: charged), so this is computed once -- packet construction and frame
    #: transmission read it per message.
    wire_bytes: int = field(init=False, repr=False, compare=False, default=0)

    def __init__(self, code: int, fields: Optional[dict] = None,
                 segment: Optional[bytes] = None, segment_buffer: int = 0,
                 trace: Optional["SpanContext"] = None) -> None:
        self.code = code
        self.fields = {} if fields is None else fields
        self.segment = segment
        self.segment_buffer = segment_buffer
        self.trace = trace
        if segment is None:
            self.wire_bytes = SHORT_MESSAGE_BYTES + max(0, segment_buffer)
        else:
            if not isinstance(segment, (bytes, bytearray)):
                raise TypeError(
                    f"segment must be bytes (got {type(segment).__name__})")
            self.wire_bytes = SHORT_MESSAGE_BYTES + max(len(segment),
                                                        segment_buffer)
        if segment_buffer < 0:
            raise ValueError("segment_buffer must be non-negative")

    @property
    def segment_wire_bytes(self) -> int:
        actual = len(self.segment) if self.segment is not None else 0
        return max(actual, self.segment_buffer)

    def get(self, name: str, default: Any = None) -> Any:
        return self.fields.get(name, default)

    def __getitem__(self, name: str) -> Any:
        return self.fields[name]

    @property
    def reply_code(self) -> ReplyCode:
        """Interpret this message as a reply (first field = reply code)."""
        return ReplyCode(self.code)

    @property
    def ok(self) -> bool:
        return self.code == ReplyCode.OK

    @classmethod
    def request(cls, code: int, segment: bytes | None = None,
                segment_buffer: int = 0, **fields: Any) -> "Message":
        return cls(int(code), fields, segment, segment_buffer)

    @classmethod
    def reply(cls, code: int = ReplyCode.OK, segment: bytes | None = None,
              segment_buffer: int = 0, **fields: Any) -> "Message":
        return cls(int(code), fields, segment, segment_buffer)

    def __repr__(self) -> str:
        seg = f" +seg[{self.segment_wire_bytes}]" if self.segment_wire_bytes else ""
        return f"Message({code_name(self.code)}, {self.fields}{seg})"


class PacketKind(enum.Enum):
    """Kernel-to-kernel packet types."""

    REQUEST = "request"            # a Send in flight
    REPLY = "reply"                # a Reply in flight
    NACK = "nack"                  # destination process does not exist
    PROBE = "probe"                # sender kernel checking on a transaction
    PROBE_OK = "probe_ok"          # transaction alive at the destination
    PROBE_FORWARDED = "probe_fwd"  # transaction was forwarded; re-aim probes
    PROBE_MISSING = "probe_missing"  # dst process alive but request never arrived
    GETPID_QUERY = "getpid_query"        # broadcast service lookup
    GETPID_RESPONSE = "getpid_response"  # unicast answer to a query
    GROUP_REQUEST = "group_request"      # multicast Send to a process group
    MOVE_DATA = "move_data"              # one bulk-transfer data packet
    MOVE_REQUEST = "move_request"        # asyncio transport: MoveTo/MoveFrom
    MOVE_RESPONSE = "move_response"      # asyncio transport: move outcome/data

    # Members are singletons and equality is identity, so the identity hash
    # is consistent -- and C-level, unlike enum's default hash-of-name,
    # which shows up in profiles because every received packet is dispatched
    # through a dict keyed by its kind.
    __hash__ = object.__hash__


#: Packet kinds that carry a Message payload.
_MESSAGE_KINDS = {PacketKind.REQUEST, PacketKind.REPLY, PacketKind.NACK,
                  PacketKind.GROUP_REQUEST}

#: Shared ``info`` for the common case of a packet with no side-channel
#: data.  Packet info is read-only after construction (callers that need
#: entries pass their own dict), so one empty dict serves every such packet
#: instead of a fresh allocation per construction.
_EMPTY_INFO: dict = {}


@dataclass(slots=True, init=False)
class Packet:
    """One kernel-level packet: the unit the Ethernet carries.

    Like :class:`Message`, the initializer is hand-written: two to three
    packets are built per transaction, and the stores below are the whole
    job.  Equality and repr still come from the dataclass machinery.
    """

    kind: PacketKind
    src_pid: Pid
    dst_pid: Optional[Pid]
    txn_id: int
    message: Optional[Message] = None
    #: Side-channel fields (forwarder, group id, move parameters...).  None
    #: normalizes to a shared immutable-by-convention empty dict.
    info: Optional[dict] = None
    #: Wire payload size: control packets are short-message sized.  Computed
    #: once at construction -- kind, message and info are fixed for the
    #: packet's lifetime, and transmit/profiling read this several times per
    #: frame.
    payload_bytes: int = field(init=False, repr=False, compare=False,
                               default=0)

    def __init__(self, kind: PacketKind, src_pid: Pid, dst_pid: Optional[Pid],
                 txn_id: int, message: Optional[Message] = None,
                 info: Optional[dict] = None) -> None:
        self.kind = kind
        self.src_pid = src_pid
        self.dst_pid = dst_pid
        self.txn_id = txn_id
        self.message = message
        self.info = info if info is not None else _EMPTY_INFO
        if message is not None:
            if kind is PacketKind.MOVE_DATA:
                self.payload_bytes = int(self.info.get("data_bytes", 0))
            else:
                self.payload_bytes = message.wire_bytes
        elif kind is PacketKind.MOVE_DATA:
            self.payload_bytes = int(self.info.get("data_bytes", 0))
        elif kind in _MESSAGE_KINDS:
            raise ValueError(f"{kind} packet requires a message")
        else:
            self.payload_bytes = SHORT_MESSAGE_BYTES
