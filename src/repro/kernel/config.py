"""Kernel protocol configuration (timeouts and retries).

These govern *failure detection and recovery*, not the happy path: none of
the paper's latency numbers involve them, because probes and retransmission
timers only fire when a transaction takes longer than their first interval.
The availability experiment (E8c) depends on Sends to crashed servers
failing in bounded time: ``PROBE_INTERVAL * (MAX_FAILED_PROBES + 1)`` after
the Send.

The retransmission block is what makes Send a *reliable* transaction over a
lossy wire (E14): the sender kernel retransmits an unanswered request on a
capped exponential backoff until the reply arrives (the reply is the ack,
as in V) or the probe protocol declares the peer dead; the receiver kernel
suppresses duplicates by transaction id and replays cached replies.  With
``retransmit_enabled=False`` the kernel behaves like the pre-E14 model:
any lost frame in a transaction surfaces as TIMEOUT.  The defaults are
chosen so that on a loss-free wire no retransmission timer ever fires
before the transactions the paper measures complete -- which is why E1/E4/
E12 are bit-identical with the machinery on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelConfig:
    """Tunable kernel protocol parameters."""

    #: How long a sender kernel waits before probing an unreplied transaction.
    probe_interval: float = 0.100

    #: Consecutive unanswered probes before the transaction fails with TIMEOUT.
    max_failed_probes: int = 3

    #: How long a broadcast GetPid waits for the first response.
    getpid_timeout: float = 0.050

    #: Extra broadcast rounds after an unanswered GetPid before giving up:
    #: a lost query or response frame must not turn into a spurious
    #: NO_SERVER.  Total time to a negative answer is
    #: ``getpid_timeout * (getpid_retries + 1)``.
    getpid_retries: int = 2

    #: How long a GroupSend waits for the first reply before failing.
    group_reply_timeout: float = 0.050

    #: Master switch for the Send retransmission protocol (reply replay
    #: included).  Off = the fail-stop-only wire model: lost frames become
    #: TIMEOUTs.
    retransmit_enabled: bool = True

    #: First retransmission fires this long after the request frame; far
    #: above every measured transaction time, so the happy path never pays.
    retransmit_initial: float = 0.025

    #: Backoff multiplier and ceiling for subsequent retransmissions.
    retransmit_backoff: float = 2.0
    retransmit_cap: float = 0.200

    #: Receiver-side cache of the last replies sent to remote senders, for
    #: replay when the reply frame itself was lost (keyed by txn id).
    reply_cache_entries: int = 512


DEFAULT_CONFIG = KernelConfig()
