"""Kernel protocol configuration (timeouts and retries).

These govern *failure detection*, not the happy path: none of the paper's
latency numbers involve them, because probes only fire when a transaction
takes longer than PROBE_INTERVAL.  The availability experiment (E8c) depends
on Sends to crashed servers failing in bounded time:
``PROBE_INTERVAL * (MAX_FAILED_PROBES + 1)`` after the Send.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelConfig:
    """Tunable kernel protocol parameters."""

    #: How long a sender kernel waits before probing an unreplied transaction.
    probe_interval: float = 0.100

    #: Consecutive unanswered probes before the transaction fails with TIMEOUT.
    max_failed_probes: int = 3

    #: How long a broadcast GetPid waits for the first response.
    getpid_timeout: float = 0.050

    #: How long a GroupSend waits for the first reply before failing.
    group_reply_timeout: float = 0.050


DEFAULT_CONFIG = KernelConfig()
