"""Kernel process objects.

A :class:`Process` couples a :class:`~repro.sim.process.Task` (the generator
executing the program) with the kernel bookkeeping the IPC primitives need:
the queue of arrived-but-unreceived messages, receive-blocking state, the
single outstanding send transaction, and the set of received-but-unreplied
transactions (needed both for Reply validation and for error replies when a
process dies holding requests).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.kernel.ipc import Delivery, Segment
from repro.kernel.messages import Message
from repro.kernel.pids import Pid
from repro.sim.process import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import ScheduledEvent


class ProcessState(enum.Enum):
    READY = "ready"              # runnable / currently being stepped
    RECV_BLOCKED = "recv_blocked"  # inside Receive, queue empty
    SEND_BLOCKED = "send_blocked"  # awaiting a reply to its Send
    MOVE_BLOCKED = "move_blocked"  # inside MoveTo/MoveFrom
    WAITING = "waiting"          # Delay / GetPid broadcast / group send
    DEAD = "dead"


@dataclass(slots=True, init=False)
class Transaction:
    """One outstanding Send, tracked at the *sender's* kernel.

    Hand-written ``__init__`` (one transaction per Send; the generated
    initializer's default plumbing is measurable on the IPC hot path).
    """

    txn_id: int
    sender: Pid
    dst: Pid                       # current responder (updated on Forward)
    message: Message
    expose: Optional[Segment] = None
    #: Simulated send time; the telemetry collector's per-host resolution
    #: latency (p99) is measured from here to the completing reply.
    sent_at: float = 0.0
    probes_unanswered: int = 0
    probe_event: Optional["ScheduledEvent"] = None
    #: Retransmission state (see KernelConfig): the pending timer, how many
    #: request copies have been re-sent, and whether the request is known to
    #: have reached the responder (a probe answer acks it; the reply both
    #: acks and completes).
    retransmit_event: Optional["ScheduledEvent"] = None
    retransmits: int = 0
    acked: bool = False

    def __init__(self, txn_id: int, sender: Pid, dst: Pid, message: Message,
                 expose: Optional[Segment] = None, sent_at: float = 0.0) -> None:
        self.txn_id = txn_id
        self.sender = sender
        self.dst = dst
        self.message = message
        self.expose = expose
        self.sent_at = sent_at
        self.probes_unanswered = 0
        self.probe_event = None
        self.retransmit_event = None
        self.retransmits = 0
        self.acked = False

    def cancel_probe(self) -> None:
        if self.probe_event is not None:
            self.probe_event.cancel()
            self.probe_event = None

    def cancel_retransmit(self) -> None:
        if self.retransmit_event is not None:
            self.retransmit_event.cancel()
            self.retransmit_event = None


class Process:
    """One V process: a task plus kernel IPC state."""

    __slots__ = ("pid", "task", "name", "state", "msg_queue", "recv_filter",
                 "pending_txn", "unreplied", "profile_frames")

    def __init__(self, pid: Pid, task: Task, name: str) -> None:
        self.pid = pid
        self.task = task
        self.name = name
        self.state = ProcessState.READY

        #: Arrived requests not yet returned by Receive.
        self.msg_queue: deque[Delivery] = deque()
        #: Set when blocked in Receive; optional sender filter.
        self.recv_filter: Optional[Pid] = None
        #: The single outstanding Send (V senders block, so at most one).
        self.pending_txn: Optional[Transaction] = None
        #: txn_id -> Delivery for requests received but not yet replied to.
        self.unreplied: dict[int, Delivery] = {}
        #: Attribution frames this process opened with ProfileEnter and has
        #: not yet closed.  Kept per process (not on the engine) so frames
        #: survive generator suspension without leaking into the stacks of
        #: interleaved processes.
        self.profile_frames: tuple = ()

    @property
    def alive(self) -> bool:
        return self.state is not ProcessState.DEAD

    def queue_delivery(self, delivery: Delivery) -> None:
        self.msg_queue.append(delivery)

    def next_matching_delivery(self, from_pid: Optional[Pid]) -> Optional[Delivery]:
        """Pop the first queued delivery matching the receive filter."""
        for index, delivery in enumerate(self.msg_queue):
            if from_pid is None or delivery.sender == from_pid:
                del self.msg_queue[index]
                return delivery
        return None

    def __repr__(self) -> str:
        return f"Process({self.name!r}, {self.pid!r}, {self.state.value})"
