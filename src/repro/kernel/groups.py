"""Process groups and group Send (paper Sec. 7 / reference 4).

The paper's planned replacement for broadcast GetPid is the V kernel's
one-to-many *group Send*: a message multicast to a process group, with the
sender resuming on the first reply.  The naming experiment built on it (E10)
implements a context transparently by a group of servers: a multicast CSname
request reaches only the group's members, and only the server that implements
the name replies.

Group membership is domain-wide state (real V kernels exchanged membership
via the group protocol; we centralize it, which changes no observable
behaviour).  Delivery uses Ethernet multicast addresses so that non-member
hosts are not interrupted -- the property E10 measures against broadcast.
"""

from __future__ import annotations

from collections import defaultdict

from repro.kernel.pids import Pid
from repro.net.packet import GroupAddress


class GroupRegistry:
    """Domain-wide process-group membership."""

    def __init__(self) -> None:
        self._members: dict[int, set[Pid]] = defaultdict(set)

    def join(self, group_id: int, pid: Pid) -> None:
        self._members[group_id].add(pid)

    def leave(self, group_id: int, pid: Pid) -> None:
        self._members[group_id].discard(pid)

    def remove_pid(self, pid: Pid) -> None:
        """Drop a dead process from every group."""
        for members in self._members.values():
            members.discard(pid)

    def members(self, group_id: int) -> set[Pid]:
        return set(self._members.get(group_id, set()))

    def members_on_host(self, group_id: int, logical_host: int) -> list[Pid]:
        return sorted(
            (pid for pid in self._members.get(group_id, set())
             if pid.logical_host == logical_host),
        )

    def hosts_with_members(self, group_id: int) -> set[int]:
        return {pid.logical_host for pid in self._members.get(group_id, set())}

    @staticmethod
    def address(group_id: int) -> GroupAddress:
        return GroupAddress(group_id)
