"""Kernel service naming: SetPid / GetPid (paper Sec. 4.2).

Programs are written in terms of *services*; the binding of service to server
process happens at time of use.  Each kernel keeps a local registration
table; a lookup that misses locally (and whose scope allows it) broadcasts a
query to the other kernels in the domain.

The paper stresses the scope distinction: a server registers as "local to
this machine", "remote", or "both", and it matters to be able to run a
private local instance of a service alongside a public one.  We implement the
matching rule accordingly:

- a *local* lookup on host H matches registrations on H with scope LOCAL or
  BOTH;
- a *broadcast* query matches registrations with scope REMOTE or BOTH;
- ``Scope.ANY`` lookups try local first, then broadcast -- exactly the
  kernel behaviour described in the paper ("checks its local table and, if
  that fails and the scope is not local, broadcasts").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.kernel.pids import Pid, logical_service_pid


class Scope(enum.Enum):
    """Registration visibility / lookup scope."""

    LOCAL = "local"
    REMOTE = "remote"
    BOTH = "both"
    #: Lookup-only pseudo-scope: local table first, then broadcast.
    ANY = "any"


class ServiceId(enum.IntEnum):
    """Well-known service identifiers (the paper's "logical pids").

    The context prefix server stores (logical-pid, well-known-context-id)
    bindings for generic services and performs a GetPid each time such a name
    is used (Sec. 6).
    """

    STORAGE = 1          # file service
    TIME = 2
    PRINT = 3
    CONTEXT_PREFIX = 4   # the per-user context prefix server
    TERMINAL = 5         # virtual graphics terminal service
    INTERNET = 6         # IP/TCP service
    TEAM = 7             # program manager
    EXCEPTION = 8
    MAIL = 9
    NAME_SERVER = 10     # centralized baseline only
    PIPE = 11
    OBS = 12             # the [obs] introspection name space (root obs server)
    SHARD = 13           # replicated shard prefix service (repro.core.shard)

    @property
    def logical_pid(self) -> Pid:
        return logical_service_pid(int(self))


@dataclass
class Registration:
    """One entry in a kernel's service table."""

    service: int
    pid: Pid
    scope: Scope

    def visible_locally(self) -> bool:
        return self.scope in (Scope.LOCAL, Scope.BOTH)

    def visible_remotely(self) -> bool:
        return self.scope in (Scope.REMOTE, Scope.BOTH)


class ServiceRegistry:
    """The per-kernel SetPid/GetPid table.

    Multiple registrations per service are kept (a LOCAL one can coexist
    with a REMOTE one, per the paper); within one visibility class the most
    recent registration wins, which is what re-registration after a server
    restart needs.
    """

    def __init__(self) -> None:
        self._entries: dict[int, list[Registration]] = {}
        #: Callbacks fired with a Pid when its registrations are dropped.
        #: Holders of looked-up pids (the client-side name cache) subscribe
        #: so a server's exit or crash is observed immediately, rather than
        #: discovered by sending to a dead pid and waiting out the probes.
        self._removal_listeners: list = []

    def subscribe_removals(self, callback) -> None:
        """Register ``callback(pid)`` for registration-removal events."""
        if callback not in self._removal_listeners:
            self._removal_listeners.append(callback)

    def unsubscribe_removals(self, callback) -> None:
        if callback in self._removal_listeners:
            self._removal_listeners.remove(callback)

    def _notify_removed(self, pid: Pid) -> None:
        for callback in list(self._removal_listeners):
            callback(pid)

    def set_pid(self, service: int, pid: Pid, scope: Scope) -> None:
        if scope == Scope.ANY:
            raise ValueError("ANY is a lookup scope, not a registration scope")
        entries = self._entries.setdefault(int(service), [])
        # Replace an existing registration with the same visibility class.
        entries[:] = [e for e in entries if e.scope != scope]
        entries.append(Registration(int(service), pid, scope))

    def lookup_local(self, service: int) -> Pid | None:
        """Match for a same-host GetPid."""
        return self._match(service, lambda e: e.visible_locally())

    def lookup_remote(self, service: int) -> Pid | None:
        """Match for an incoming broadcast query."""
        return self._match(service, lambda e: e.visible_remotely())

    def _match(self, service: int, predicate) -> Pid | None:
        entries = self._entries.get(int(service), [])
        for entry in reversed(entries):
            if predicate(entry):
                return entry.pid
        return None

    def remove_pid(self, pid: Pid) -> None:
        """Drop every registration held by ``pid`` (process exit / crash)."""
        removed = False
        for entries in self._entries.values():
            kept = [e for e in entries if e.pid != pid]
            if len(kept) != len(entries):
                entries[:] = kept
                removed = True
        if removed:
            self._notify_removed(pid)

    def clear(self) -> None:
        doomed = {entry.pid for entries in self._entries.values()
                  for entry in entries}
        self._entries.clear()
        for pid in doomed:
            self._notify_removed(pid)

    def registrations(self) -> list[Registration]:
        result: list[Registration] = []
        for entries in self._entries.values():
            result.extend(entries)
        return result

    def snapshot(self) -> list[dict]:
        """JSON-ready view of the table, one record per registration.

        Service ids that match a well-known :class:`ServiceId` are labelled
        with its name; private ids keep the bare number.  This is what the
        stat server serves as ``[obs]/hosts/<host>/services``.
        """
        records = []
        for entry in self.registrations():
            try:
                service_name = ServiceId(entry.service).name.lower()
            except ValueError:
                service_name = str(entry.service)
            records.append({
                "service": entry.service,
                "service_name": service_name,
                "pid": entry.pid.value,
                "scope": entry.scope.value,
            })
        records.sort(key=lambda r: (r["service"], r["scope"]))
        return records
