"""Kernel exception hierarchy.

Failures that a V program would see as *reply codes* (sending to a dead
process, say) are returned as reply messages, not raised -- matching the
paper's "standard system replies" convention.  Exceptions here are for
*programming errors* against the kernel API (replying to a process that is
not awaiting a reply, moving data outside an exposed segment, ...), which the
real kernel also treated as hard errors.
"""

from __future__ import annotations


class KernelError(RuntimeError):
    """Base class for kernel API misuse."""


class NoSuchProcess(KernelError):
    """An operation referenced a pid the kernel has never heard of."""


class NotAwaitingReply(KernelError):
    """Reply/Forward/Move aimed at a process that is not blocked on us.

    V treated this as a hard error: a server may only ``Reply`` to, or move
    data to/from, a process that is currently send-blocked on a transaction
    directed at that server.
    """


class BadSegmentAccess(KernelError):
    """MoveTo/MoveFrom outside the sender's exposed segment, or wrong mode."""


class IllegalEffect(KernelError):
    """A process yielded something the kernel does not understand."""


class HostDown(KernelError):
    """Operation attempted on a crashed host (test/fault-injection misuse)."""
