"""Inverse name mapping (paper Sec. 5.7 and the Sec. 6 deficiencies).

The protocol provides inverse operations -- (server-pid, context-id) -> name
and (server-pid, instance-id) -> name -- so "a program [can] determine the
CSname of its current context as well as the 'absolute' name of, for
example, an open file."

The paper is candid that this is the weak spot of the model, and we
reproduce the weakness faithfully rather than papering over it:

- the mapping is the inverse of a many-to-one function, so the returned
  CSname "may not be the one that was in fact used";
- there may be *no* inverse (the prefix that reached the object may since
  have been deleted);
- after forwarding, "it is difficult, if not impossible, to determine which
  server forwarded the request when working backward from the object" -- a
  server can only report a name relative to its own roots.

:func:`absolute_name` therefore returns an :class:`InverseResult` that says
which of these caveats applied, and the tests in
``tests/core/test_inverse.py`` pin each failure mode down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.context import ContextPair
from repro.core.descriptors import PrefixDescription
from repro.core.query import read_prefix_records
from repro.core.resolver import NamingEnvironment
from repro.kernel.ipc import Send
from repro.kernel.messages import Message, RequestCode
from repro.kernel.pids import Pid

Gen = Generator[Any, Any, Any]


class InverseStatus(enum.Enum):
    """How trustworthy an inverse mapping came out."""

    EXACT = "exact"              # server produced a name, prefix found for it
    SERVER_RELATIVE = "server_relative"  # name valid only at that server
    NO_MAPPING = "no_mapping"    # the server could not name the object


@dataclass
class InverseResult:
    status: InverseStatus
    name: Optional[bytes] = None
    caveat: str = ""

    @property
    def text(self) -> str:
        return self.name.decode(errors="replace") if self.name else ""


def context_to_name(server: Pid, context_id: int) -> Gen:
    """Ask a server to name one of its contexts; returns bytes or None."""
    reply = yield Send(server, Message.request(
        RequestCode.CONTEXT_TO_NAME, context_id=context_id))
    if not reply.ok:
        return None
    return bytes(reply.segment or b"")


def instance_to_name(server: Pid, instance_id: int) -> Gen:
    """Ask a server to name one of its open instances; returns bytes or None."""
    reply = yield Send(server, Message.request(
        RequestCode.INSTANCE_TO_NAME, instance=instance_id))
    if not reply.ok:
        return None
    return bytes(reply.segment or b"")


def find_prefix_for(env: NamingEnvironment, pair: ContextPair) -> Gen:
    """Scan the user's prefix table for a prefix naming ``pair``.

    Returns the prefix bytes (without brackets) or None.  Generic bindings
    cannot be matched without re-resolving them, which is itself one of the
    paper's many-to-one headaches; only fixed bindings are considered.
    """
    if env.prefix_server is None:
        return None
    records = yield from read_prefix_records(env)
    for record in records:
        if not isinstance(record, PrefixDescription) or record.generic:
            continue
        if (record.server_pid == pair.server.value
                and record.context_id == pair.context_id):
            return record.name.encode()
    return None


def absolute_name(env: NamingEnvironment, server: Pid, context_id: int,
                  instance_id: Optional[int] = None) -> Gen:
    """Best-effort absolute CSname for a context or open instance.

    Composes the server's own inverse mapping with a prefix-table scan for
    the server's root, reporting which caveats applied.
    """
    if instance_id is not None:
        server_name = yield from instance_to_name(server, instance_id)
    else:
        server_name = yield from context_to_name(server, context_id)
    if server_name is None:
        return InverseResult(
            InverseStatus.NO_MAPPING,
            caveat="the server could not produce a name (Sec. 6: there is "
                   "no guarantee that there is an inverse mapping)")
    root = ContextPair(server, 0)
    prefix = yield from find_prefix_for(env, root)
    if prefix is None:
        return InverseResult(
            InverseStatus.SERVER_RELATIVE, name=server_name,
            caveat="no prefix currently names this server's root; the name "
                   "is relative to the server and may not be the one the "
                   "user originally typed")
    absolute = b"[" + prefix + b"]" + server_name
    return InverseResult(
        InverseStatus.EXACT, name=absolute,
        caveat="inverse of a many-to-one mapping; other names may also "
               "reach this object")
