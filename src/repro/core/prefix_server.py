"""The per-user context prefix server (paper Sec. 5.8 and 6).

"V makes available standard context prefix servers, which provide each user
with locally defined character string names for contexts on servers of
interest. ... A context prefix is simply the part of the CSname that is
parsed by the context server to determine where to forward the request.  The
syntax is: any CSname starting with '[', with the prefix terminated by a
closing ']'."

Each workstation runs one, registered with *local* scope -- prefixes are
per-user state, and two users' ``[home]`` deliberately differ (Sec. 6).

Bindings come in the two forms Sec. 6 describes:

- **fixed**: prefix -> (server-pid, context-id);
- **generic**: prefix -> (logical service id, well-known context id), with a
  ``GetPid`` performed *each time the name is used*, so the binding tracks
  server restarts.

The server implements the optional ADD/DELETE_CONTEXT_NAME operations --
"ordinarily implemented only in context prefix servers" (Sec. 5.7) -- and
exposes its table as a context directory of ``PrefixDescription`` records.

Every request whose prefix resolves is *forwarded* (with the standard header
rewritten) to the target server, so the prefix server works for any CSname
operation, including codes it has never heard of.  Its per-request cost is
the calibrated ``prefix_server_cpu`` -- the constant ~3.9 ms delta of E4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.context import ContextPair, WellKnownContext
from repro.core.csnh import CSNHServer
from repro.core.descriptors import ContextDescription, ObjectDescription, PrefixDescription
from repro.core.mapping import (
    ForwardName,
    MappingFault,
    MappingOutcome,
    ResolvedObject,
    ResolvedParent,
)
from repro.core.names import BadName, as_text, parse_prefix, validate_component
from repro.core.protocol import (
    FIELD_HINT_EPOCH,
    FIELD_HINT_SERVICE,
    FIELD_HINT_SOURCE,
    CSNameHeader,
)
from repro.kernel.ipc import Annotate, Delivery, GetPid
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import Scope, ServiceId

Gen = Generator[Any, Any, Any]


@dataclass
class PrefixBinding:
    """One prefix table entry."""

    name: bytes
    #: Fixed form: the target context.
    fixed: Optional[ContextPair] = None
    #: Generic form: (service id, context id), resolved by GetPid per use.
    generic_service: Optional[int] = None
    generic_context: int = int(WellKnownContext.DEFAULT)
    #: Provenance: the authoritative mutation epoch this binding carries and
    #: the pid of the server that authored it (0 = setup-time, pre-kernel).
    #: A replica installing a synced binding copies the owner's stamp, so a
    #: (epoch, source) pair identifies one authoritative mutation fleet-wide
    #: -- the coherence auditor compares stamps, never clocks.
    epoch: int = 0
    source: int = 0

    @property
    def is_generic(self) -> bool:
        return self.generic_service is not None


class _PrefixTable:
    """The prefix server's single context (a stable ref for ContextTable)."""

    def __init__(self) -> None:
        self.bindings: dict[bytes, PrefixBinding] = {}


class ContextPrefixServer(CSNHServer):
    """The workstation's context prefix server."""

    server_name = "prefix"
    service_id = int(ServiceId.CONTEXT_PREFIX)
    service_scope = Scope.LOCAL
    #: The parse/lookup CPU is the prefix-lookup CSNH phase in profiles.
    profile_phase = "prefix_lookup"

    def __init__(self, parse_cpu: float = 0.0, user: str = "user") -> None:
        super().__init__()
        self.parse_cpu = parse_cpu
        self.user = user
        self.table = _PrefixTable()
        #: Monotonic per-server mutation counter: every authoritative change
        #: to the prefix table (install, rebind, delete) gets the next epoch.
        self._epoch = 0
        #: prefix -> epoch of its most recent *deletion*, so the auditor can
        #: distinguish "never existed" from "recently unbound" when it finds
        #: a cached entry the authority no longer holds.
        self.tombstones: dict[bytes, int] = {}
        #: Client-side binding caches to notify when a prefix is deleted or
        #: rebound (repro.core.namecache).  The prefix server and its client
        #: caches share the workstation, so a notice is a shared-memory
        #: write: zero simulated cost, no message.
        self._caches: list[Any] = []
        self.contexts.register_well_known(WellKnownContext.DEFAULT, self.table)
        self.register_csname_op(RequestCode.ADD_CONTEXT_NAME, self.op_add_prefix)
        self.register_csname_op(RequestCode.DELETE_CONTEXT_NAME, self.op_delete_prefix)

    # ------------------------------------------------------------- local API
    # (used at setup time by the code wiring a workstation together; at run
    # time clients use ADD/DELETE_CONTEXT_NAME messages)

    def _stamp(self, binding: PrefixBinding) -> PrefixBinding:
        """Stamp a fresh authoritative mutation epoch onto ``binding``.

        ``source`` is this server's pid once it runs (0 for setup-time
        installs, before the kernel assigned one); together (epoch, source)
        names this mutation uniquely across the fleet.
        """
        self._epoch += 1
        binding.epoch = self._epoch
        binding.source = int(self.pid.value) if self.pid is not None else 0
        return binding

    def define_prefix(self, name: str | bytes, pair: ContextPair) -> None:
        """Install a fixed binding."""
        key = validate_component(_as_prefix(name))
        if key in self.table.bindings:
            self._notify_invalidate(key)
        self.table.bindings[key] = self._stamp(PrefixBinding(name=key,
                                                             fixed=pair))
        self.tombstones.pop(key, None)

    def define_generic_prefix(self, name: str | bytes, service: int,
                              context_id: int = int(WellKnownContext.DEFAULT),
                              ) -> None:
        """Install a generic binding (GetPid at each use)."""
        key = validate_component(_as_prefix(name))
        if key in self.table.bindings:
            self._notify_invalidate(key)
        self.table.bindings[key] = self._stamp(PrefixBinding(
            name=key, generic_service=int(service), generic_context=context_id))
        self.tombstones.pop(key, None)

    def remove_prefix(self, name: str | bytes) -> bool:
        key = _as_prefix(name)
        removed = self.table.bindings.pop(key, None) is not None
        if removed:
            self._epoch += 1
            self.tombstones[key] = self._epoch
            self._notify_invalidate(key)
        return removed

    # ------------------------------------------------- cache notification

    def attach_cache(self, cache: Any) -> None:
        """Register a client-side binding cache for invalidation notices.

        ``cache`` needs one method: ``invalidate_prefix(prefix, reason)``.
        Attached caches hear about every prefix deletion and rebinding, so
        the common staleness (an administrator repointing ``[proj]``) is
        handled proactively; the optimistic-send recovery path remains the
        correctness backstop for everything the notices cannot see (remote
        server restarts, context garbage collection...).
        """
        if cache not in self._caches:
            self._caches.append(cache)

    def detach_cache(self, cache: Any) -> None:
        if cache in self._caches:
            self._caches.remove(cache)

    def _notify_invalidate(self, prefix: bytes) -> None:
        for cache in self._caches:
            cache.invalidate_prefix(prefix, reason="prefix-notice")

    def binding(self, name: str | bytes) -> Optional[PrefixBinding]:
        return self.table.bindings.get(_as_prefix(name))

    def prefix_names(self) -> list[bytes]:
        return sorted(self.table.bindings)

    # ----------------------------------------------------------- calibration

    def per_request_delay(self) -> float:
        return self.parse_cpu

    # -------------------------------------------------------------- mapping

    def map_request(self, delivery: Delivery, header: CSNameHeader) -> Gen:
        """Parse the ``[prefix]`` and decide where the request goes."""
        name, index = header.name, header.name_index
        if index >= len(name):
            # Empty name: the prefix table context itself (directory listing).
            return ResolvedObject(ref=self.table, is_context=True,
                                  parent_ref=None, component=b"", index=index)
        try:
            prefix, rest_index = parse_prefix(name, index)
        except BadName as err:
            return MappingFault(ReplyCode.BAD_NAME, str(err))
        if delivery.message.code in (int(RequestCode.ADD_CONTEXT_NAME),
                                     int(RequestCode.DELETE_CONTEXT_NAME)):
            # Operations *on the table*: resolve to the parent + component.
            return ResolvedParent(parent_ref=self.table, component=prefix,
                                  index=rest_index)
        binding = yield from self.lookup_binding(prefix)
        if isinstance(binding, MappingFault):
            return binding
        if binding is None:
            return MappingFault(ReplyCode.NOT_FOUND,
                                f"prefix [{as_text(prefix)}] is not defined")
        # Zero-cost span enrichment: which prefix matched and how it binds.
        yield Annotate(delivery.txn_id,
                       {"prefix": as_text(prefix),
                        "binding": "generic" if binding.is_generic else "fixed"})
        if binding.is_generic:
            pid = yield GetPid(binding.generic_service, Scope.ANY)
            if pid is None:
                return MappingFault(
                    ReplyCode.NO_SERVER,
                    f"no server for generic prefix [{as_text(prefix)}]")
            # Mark the forwarded request as generic-bound: the final server
            # echoes the service id in its binding advice, telling caching
            # clients to keep re-resolving the pid instead of pinning it.
            # The binding's provenance stamp rides (and is echoed) the same
            # way, so the client records which version it learned.
            return ForwardName(
                ContextPair(pid, binding.generic_context), rest_index,
                extra_fields={FIELD_HINT_SERVICE: int(binding.generic_service),
                              FIELD_HINT_EPOCH: int(binding.epoch),
                              FIELD_HINT_SOURCE: int(binding.source)})
        assert binding.fixed is not None
        return ForwardName(binding.fixed, rest_index,
                           extra_fields={FIELD_HINT_EPOCH: int(binding.epoch),
                                         FIELD_HINT_SOURCE: int(binding.source)})

    def lookup_binding(self, prefix: bytes) -> Gen:
        """The live binding for ``prefix``, or None (authoritatively unbound).

        A generator hook so subclasses can spend kernel effects deciding: a
        replicated prefix server (repro.core.shard) checks lease freshness
        here and may redirect to the shard owner with a MappingFault, which
        :meth:`map_request` surfaces verbatim.
        """
        yield from ()
        return self.table.bindings.get(prefix)

    # ------------------------------------------------- optional standard ops

    def op_add_prefix(self, delivery: Delivery, header: CSNameHeader,
                      resolution: MappingOutcome) -> Gen:
        assert isinstance(resolution, ResolvedParent)
        message = delivery.message
        try:
            key = validate_component(resolution.component)
        except BadName:
            yield from self.reply_error(delivery, ReplyCode.BAD_NAME)
            return
        exists = key in self.table.bindings
        if exists and not bool(message.get("replace", False)):
            yield from self.reply_error(delivery, ReplyCode.NAME_EXISTS)
            return
        binding = self._binding_from_request(key, message)
        if binding is None:
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        self.table.bindings[key] = self._stamp(binding)
        self.tombstones.pop(key, None)
        if exists:
            # Rebinding: anything cached under the old binding is now stale.
            # Notified only now, after validation succeeded and the new
            # binding is installed -- a malformed replace request must not
            # flush caches that are still perfectly valid for the binding
            # it failed to change.
            self._notify_invalidate(key)
        yield from self.bound_prefix(delivery, key, binding, rebound=exists)
        yield from self.reply_ok(delivery)

    @staticmethod
    def _binding_from_request(key: bytes, message: Any) -> Optional[PrefixBinding]:
        """Build the PrefixBinding an ADD_CONTEXT_NAME request describes."""
        service = message.get("service_id")
        if service is not None:
            return PrefixBinding(
                name=key, generic_service=int(service),
                generic_context=int(message.get("target_context",
                                                WellKnownContext.DEFAULT)))
        target_pid = message.get("target_pid")
        if target_pid is None:
            return None
        return PrefixBinding(
            name=key,
            fixed=ContextPair(Pid(int(target_pid)),
                              int(message.get("target_context", 0))))

    def bound_prefix(self, delivery: Delivery, key: bytes,
                     binding: PrefixBinding, rebound: bool) -> Gen:
        """Hook: a binding was just installed via ADD_CONTEXT_NAME.

        Runs before the OK reply; the replicated server grants the lease and
        fans the new binding out to its peers here.
        """
        yield from ()

    def unbound_prefix(self, key: bytes) -> Gen:
        """Hook: a binding was just removed via DELETE_CONTEXT_NAME."""
        yield from ()

    def op_delete_prefix(self, delivery: Delivery, header: CSNameHeader,
                         resolution: MappingOutcome) -> Gen:
        assert isinstance(resolution, ResolvedParent)
        if self.table.bindings.pop(resolution.component, None) is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        self._epoch += 1
        self.tombstones[bytes(resolution.component)] = self._epoch
        self._notify_invalidate(bytes(resolution.component))
        yield from self.unbound_prefix(bytes(resolution.component))
        yield from self.reply_ok(delivery)

    # --------------------------------------------------- directory & queries

    def describe(self, resolution: ResolvedObject) -> Optional[ObjectDescription]:
        if resolution.ref is self.table:
            return ContextDescription(
                name=f"[{self.user}'s prefixes]",
                entry_count=len(self.table.bindings),
                owner=self.user,
                context_id=int(WellKnownContext.DEFAULT))
        return None

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        if context_ref is not self.table:
            return []
        records: list[ObjectDescription] = []
        for key in sorted(self.table.bindings):
            binding = self.table.bindings[key]
            if binding.is_generic:
                records.append(PrefixDescription(
                    name=as_text(key), server_pid=0,
                    context_id=binding.generic_context, generic=True,
                    service_id=int(binding.generic_service or 0)))
            else:
                assert binding.fixed is not None
                records.append(PrefixDescription(
                    name=as_text(key), server_pid=binding.fixed.server.value,
                    context_id=binding.fixed.context_id, generic=False))
        return records

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        if context_id == int(WellKnownContext.DEFAULT):
            return b""
        return None

    # -------------------------------------------------------------- footprint

    def footprint(self) -> dict:
        """Rough memory accounting for E5 (the paper reports 4.5 KB + 2.6 KB)."""
        import sys

        table_bytes = sys.getsizeof(self.table.bindings)
        for key, binding in self.table.bindings.items():
            table_bytes += sys.getsizeof(key) + sys.getsizeof(binding)
        return {
            "bindings": len(self.table.bindings),
            "table_bytes": table_bytes,
        }


def _as_prefix(name: str | bytes) -> bytes:
    raw = name.encode("utf-8") if isinstance(name, str) else bytes(name)
    # Accept both "proj" and "[proj]" spellings at the local API.
    if raw.startswith(b"[") and raw.endswith(b"]"):
        raw = raw[1:-1]
    return raw
