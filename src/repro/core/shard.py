"""Sharded, replicated context prefix serving with lease/TTL coherence.

The paper's context prefix server is per-workstation state: one table, one
machine, one failure domain.  This module scales that design out the way
the V-System's successors did -- partition the prefix directory across N
replicated servers and let every replica answer for every prefix, bounded
by leases:

- :class:`ShardMap` -- a small *versioned* map assigning each prefix to an
  owner replica by consistent hashing (a crc32 vnode ring, so membership
  changes move only ~1/N of the keys).  The map is served over CSNH
  (``SHARD_MAP``) like any other datum, so clients discover membership
  changes through the protocol, not through shared memory.
- :class:`ShardReplicaServer` -- a :class:`~repro.core.prefix_server.
  ContextPrefixServer` subclass.  The *owner* of a prefix is authoritative:
  it serves its binding unconditionally and re-grants itself a lease on
  every use.  A *non-owner* replica may serve a binding only while its
  lease is fresh (expiry is inclusive, matching
  :class:`~repro.core.namecache.BindingCache`); an expired lease is
  *refused* with ``RETRY`` plus an owner redirect, never served --
  ``expired_served`` counts violations of that rule and the chaos harness
  asserts it stays zero.  Binding changes at the owner fan out to peers as
  ``SHARD_SYNC``/``SHARD_INVALIDATE`` notices carried by helper processes,
  so a server's request loop never blocks on another server (two replica
  loops Send-ing at each other is a deadlock the probe protocol cannot
  break, because both processes are alive).
- :class:`ShardCluster` -- spawns the replicas, bootstraps bindings, and
  drives *failover*: when the chaos harness crashes an owner, the cluster
  (standing in for V's kernel-resident membership service, at zero
  simulated cost) bumps the map version, drops the dead replica, and
  installs the new map into the survivors.  A restarted replica re-joins by
  bulk-pulling a live peer's table (``SHARD_PULL``) *before* it is put back
  in the map -- a rejoiner that claimed ownership with an empty table would
  answer authoritative NOT_FOUNDs for names it merely has not learned yet.
- :class:`ShardResolver` -- the per-host resolver daemon.  It duck-types
  the :class:`~repro.core.namecache.NameCache` contract used by
  :func:`repro.core.resolver.send_csname_request` and layers three things
  on the PR-2 :class:`~repro.core.namecache.BindingCache` substrate:
  TTL-bound positive prefix bindings, *negative* caching of authoritative
  NOT_FOUNDs (returning :data:`~repro.core.namecache.NEGATIVE_ROUTE`), and
  hierarchical lookup -- route straight to the shard owner per its map
  copy, and on failure walk the replica ring, refreshing the map over the
  wire, instead of re-sending to the same corpse.

Clients never learn about failover out of band: a resolver holds a map
*copy* and catches up only through ``SHARD_MAP`` replies and ``RETRY``
redirects, which is what the E18 storm scenario measures.
"""

from __future__ import annotations

import bisect
import json
import zlib
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Generator, Optional

from repro.core.context import ContextPair, WellKnownContext
from repro.core.mapping import ForwardName, MappingFault
from repro.core.namecache import (
    NEGATIVE_ROUTE,
    BindingCache,
    CachedRoute,
    CacheStats,
    _STALE_CODE_INTS,
    read_binding_advice,
)
from repro.core.names import BadName, as_text, has_prefix, parse_prefix, validate_component
from repro.core.prefix_server import ContextPrefixServer, PrefixBinding, _as_prefix
from repro.core.protocol import CSNameHeader, read_binding_provenance
from repro.kernel.ipc import Delivery, GetPid, Now, Send
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import Scope, ServiceId

Gen = Generator[Any, Any, Any]

#: Vnodes per replica on the hash ring.  More vnodes smooth the partition
#: (E18 measures the max/min owned-prefix ratio); the count is part of the
#: map and travels with it, so every party builds the identical ring.
DEFAULT_VNODES = 16


# ----------------------------------------------------------------- the map


@dataclass(frozen=True)
class ShardMap:
    """A versioned assignment of prefixes to replicas (consistent hashing).

    Immutable: membership changes produce a *new* map with ``version + 1``
    (:meth:`without`, :meth:`with_replica`), so "is yours newer than mine"
    is one integer compare -- the whole coherence story between cluster,
    replicas, and resolvers rides on that monotonic version.

    Hashing uses ``zlib.crc32`` exclusively: Python's builtin ``hash`` is
    salted per process and would assign prefixes differently on every run.
    """

    version: int
    #: Sorted ``(replica_id, pid_value)`` pairs.  Pid *values* (ints), not
    #: Pid objects, so the map JSON-encodes for the SHARD_MAP wire reply.
    replicas: tuple = ()
    vnodes: int = DEFAULT_VNODES

    @cached_property
    def _ring(self) -> tuple:
        points = []
        for replica_id, __ in self.replicas:
            for vnode in range(self.vnodes):
                point = zlib.crc32(b"replica-%d/%d" % (replica_id, vnode))
                points.append((point, replica_id))
        points.sort()
        return tuple(points)

    def owner_of(self, prefix: bytes) -> int:
        """The replica id owning ``prefix`` (first ring point clockwise)."""
        ring = self._ring
        if not ring:
            raise ValueError("empty shard map has no owners")
        point = zlib.crc32(bytes(prefix))
        index = bisect.bisect_right(ring, (point, 1 << 62))
        if index == len(ring):
            index = 0
        return ring[index][1]

    def replicas_for(self, prefix: bytes) -> list:
        """Distinct replica ids in ring order starting at the owner.

        This is the candidate order a resolver walks on failover: drop the
        first entry (the dead owner) and the second is exactly the replica
        consistent hashing promotes, so client and cluster agree on the
        successor without talking.
        """
        ring = self._ring
        if not ring:
            return []
        point = zlib.crc32(bytes(prefix))
        index = bisect.bisect_right(ring, (point, 1 << 62))
        order: list = []
        for offset in range(len(ring)):
            replica_id = ring[(index + offset) % len(ring)][1]
            if replica_id not in order:
                order.append(replica_id)
        return order

    def pid_of(self, replica_id: int) -> Optional[Pid]:
        for rid, pid_value in self.replicas:
            if rid == replica_id:
                return Pid(pid_value)
        return None

    def without(self, replica_id: int) -> "ShardMap":
        kept = tuple((rid, pv) for rid, pv in self.replicas
                     if rid != replica_id)
        return ShardMap(version=self.version + 1, replicas=kept,
                        vnodes=self.vnodes)

    def with_replica(self, replica_id: int, pid_value: int) -> "ShardMap":
        kept = [(rid, pv) for rid, pv in self.replicas if rid != replica_id]
        kept.append((int(replica_id), int(pid_value)))
        return ShardMap(version=self.version + 1,
                        replicas=tuple(sorted(kept)), vnodes=self.vnodes)

    def assignment_counts(self, prefixes) -> dict:
        """How many of ``prefixes`` each replica owns (E18 balance metric)."""
        counts = {rid: 0 for rid, __ in self.replicas}
        for prefix in prefixes:
            counts[self.owner_of(bytes(prefix))] += 1
        return counts

    def encode(self) -> bytes:
        return json.dumps({
            "version": self.version,
            "replicas": [list(pair) for pair in self.replicas],
            "vnodes": self.vnodes,
        }, sort_keys=True).encode()

    @classmethod
    def decode(cls, payload: bytes) -> "ShardMap":
        doc = json.loads(payload)
        return cls(version=int(doc["version"]),
                   replicas=tuple((int(rid), int(pv))
                                  for rid, pv in doc["replicas"]),
                   vnodes=int(doc.get("vnodes", DEFAULT_VNODES)))


# ------------------------------------------------------- binding wire codec


def binding_fields(binding: PrefixBinding) -> dict:
    """A binding as SHARD_SYNC/SHARD_FETCH reply fields."""
    if binding.is_generic:
        return {"service_id": int(binding.generic_service),
                "target_context": int(binding.generic_context)}
    assert binding.fixed is not None
    return {"target_pid": int(binding.fixed.server.value),
            "target_context": int(binding.fixed.context_id)}


def binding_from_fields(key: bytes, message: Message) -> Optional[PrefixBinding]:
    """Rebuild a binding from the same fields ADD_CONTEXT_NAME uses."""
    return ContextPrefixServer._binding_from_request(key, message)


# ------------------------------------------------------------- the replica


class ShardReplicaServer(ContextPrefixServer):
    """One replica of the sharded prefix service.

    Everything the base server does still works (ADD/DELETE, forwarding,
    generic GetPid bindings, directory listing); what changes is *who may
    answer*: :meth:`lookup_binding` enforces the lease rule, and binding
    mutations at the owner fan out to peers.
    """

    server_name = "shard"
    service_id = int(ServiceId.SHARD)
    #: Replicas serve the whole domain, not one workstation.
    service_scope = Scope.BOTH

    def __init__(self, replica_id: int, shard_map: ShardMap,
                 lease_ttl: float = 1.0, parse_cpu: float = 0.0,
                 user: str = "shard") -> None:
        super().__init__(parse_cpu=parse_cpu, user=user)
        self.replica_id = int(replica_id)
        self.shard_map = shard_map
        self.lease_ttl = float(lease_ttl)
        #: The host this replica runs on; set by the cluster at spawn time.
        #: Needed to hand fan-out work to helper processes -- the server
        #: loop itself must never block on a Send to a peer (see module
        #: docstring).
        self.host = None
        #: prefix -> absolute expiry (simulated seconds).  Inclusive expiry:
        #: a lease is dead at exactly ``now == expiry``, the same boundary
        #: BindingCache uses.
        self._leases: dict = {}
        #: Prefixes with an async refresh already in flight (dedup).
        self._refreshing: set = set()
        # Deterministic counters the storm and E18 read off the object.
        self.lease_refusals = 0
        self.lease_refreshes = 0
        self.syncs_seen = 0
        self.invalidations_seen = 0
        #: Resolutions served from an expired non-owner lease.  Must stay 0
        #: forever -- the refusal path above is the only legal handling --
        #: and the chaos harness (check_lease_coherence) asserts exactly
        #: that across every replica the storm ever spawned.
        self.expired_served = 0
        self.register_request_op(RequestCode.SHARD_FETCH, self.op_shard_fetch)
        self.register_request_op(RequestCode.SHARD_SYNC, self.op_shard_sync)
        self.register_request_op(RequestCode.SHARD_INVALIDATE,
                                 self.op_shard_invalidate)
        self.register_request_op(RequestCode.SHARD_MAP, self.op_shard_map)
        self.register_request_op(RequestCode.SHARD_PULL, self.op_shard_pull)

    # ------------------------------------------------------------- ownership

    def is_owner(self, prefix: bytes) -> bool:
        try:
            return self.shard_map.owner_of(prefix) == self.replica_id
        except ValueError:
            return False

    def owner_pid(self, prefix: bytes) -> Optional[Pid]:
        try:
            return self.shard_map.pid_of(self.shard_map.owner_of(prefix))
        except ValueError:
            return None

    def lease_fresh(self, prefix: bytes, now: float) -> bool:
        expiry = self._leases.get(prefix)
        return expiry is not None and now < expiry

    def _probe(self):
        """The domain's coherence probe when armed, else None.

        Duck-typed through ``domain.coherence`` (see repro.obs.audit) so
        the core layer never imports the obs layer; the disabled path is
        one attribute read.  Probe callbacks are pure bookkeeping -- no
        events, no rng draws -- so an armed run stays simulated-time
        identical to a bare one.
        """
        host = self.host
        if host is None:
            return None
        return getattr(host.domain, "coherence", None)

    # ----------------------------------------------------- the coherence rule

    def lookup_binding(self, prefix: bytes) -> Gen:
        """Serve only what the lease discipline allows.

        Owner: authoritative, always serves, re-grants its own lease (so a
        hot prefix's lease never lapses at the replicas that keep hearing
        SYNCs).  Non-owner: serves iff the lease is fresh; otherwise kicks
        an async refresh and *refuses* with RETRY + the owner's pid, which
        the shard resolver follows directly on its next attempt.
        """
        binding = self.table.bindings.get(prefix)
        now = yield Now()
        probe = self._probe()
        if probe is not None:
            probe.shard_lookup(self.host.name, self.replica_id)
        if self.is_owner(prefix):
            if binding is not None:
                self._leases[prefix] = now + self.lease_ttl
                if probe is not None:
                    probe.lease_event(self.host.name, "grant")
            return binding
        if binding is not None:
            if self.lease_fresh(prefix, now):
                return binding
            # The one forbidden move would be returning ``binding`` here.
            # (expired_served stays 0; the refusal below is the legal path.)
        self.lease_refusals += 1
        if probe is not None:
            probe.lease_event(self.host.name, "refusal")
        self._spawn_refresh(prefix)
        owner = self.owner_pid(prefix)
        extra = {"owner_pid": int(owner.value)} if owner is not None else None
        return MappingFault(
            ReplyCode.RETRY,
            f"replica {self.replica_id}: no fresh lease on "
            f"[{as_text(prefix)}]; ask the owner",
            extra_fields=extra)

    def _spawn_refresh(self, prefix: bytes) -> None:
        """Refresh one lease from the owner, off the request loop."""
        if self.host is None or self.host.crashed:
            return
        if prefix in self._refreshing:
            return
        owner = self.owner_pid(prefix)
        if owner is None or owner == self.pid:
            return
        self._refreshing.add(prefix)
        self.host.spawn(self._refresh_task(prefix, owner),
                        name=f"shard-refresh-{as_text(prefix)}")

    def _refresh_task(self, prefix: bytes, owner: Pid) -> Gen:
        reply = yield Send(owner, Message.request(
            RequestCode.SHARD_FETCH, prefix=as_text(prefix)))
        self._refreshing.discard(prefix)
        if reply.ok:
            binding = binding_from_fields(prefix, reply)
            if binding is not None:
                now = yield Now()
                rebound = prefix in self.table.bindings
                binding.epoch = int(reply.get("epoch", 0))
                binding.source = int(reply.get("source", 0))
                self.table.bindings[prefix] = binding
                self._leases[prefix] = now + float(
                    reply.get("lease", self.lease_ttl))
                self.lease_refreshes += 1
                probe = self._probe()
                if probe is not None:
                    probe.lease_event(self.host.name, "refresh")
                if rebound:
                    self._notify_invalidate(prefix)
        elif reply.code == int(ReplyCode.NOT_FOUND):
            # Authoritatively unbound at the owner: drop our stale copy.
            if self.table.bindings.pop(prefix, None) is not None:
                self._notify_invalidate(prefix)
            self._leases.pop(prefix, None)
        # TIMEOUT / RETRY: owner dead or map in motion -- the failover hook
        # rebuilds state from a live table, nothing to do here.

    # -------------------------------------------- table mutations and fan-out

    def map_request(self, delivery: Delivery, header: CSNameHeader) -> Gen:
        """Route binding *mutations* to the shard owner before resolving.

        ADD/DELETE_CONTEXT_NAME must land at the owner (only the owner may
        fan a change out); a non-owner forwards with the standard Sec. 5.4
        rewrite -- same name index, so the owner re-parses the prefix --
        and the client never notices.  Live replicas always share one map
        (the cluster installs updates into all of them in the same event),
        so forwarding cannot loop.
        """
        name, index = header.name, header.name_index
        if (delivery.message.code in (int(RequestCode.ADD_CONTEXT_NAME),
                                      int(RequestCode.DELETE_CONTEXT_NAME))
                and index < len(name)):
            try:
                prefix, __ = parse_prefix(name, index)
            except BadName:
                prefix = None
            if prefix is not None and not self.is_owner(prefix):
                owner = self.owner_pid(prefix)
                if owner is not None and owner != self.pid:
                    return ForwardName(
                        ContextPair(owner, int(WellKnownContext.DEFAULT)),
                        index)
        return (yield from super().map_request(delivery, header))

    def bound_prefix(self, delivery: Delivery, key: bytes,
                     binding: PrefixBinding, rebound: bool) -> Gen:
        now = yield Now()
        self._leases[key] = now + self.lease_ttl
        probe = self._probe()
        if probe is not None:
            probe.lease_event(self.host.name, "grant")
        if self.is_owner(key):
            self._fan_out(RequestCode.SHARD_SYNC, key, binding)

    def unbound_prefix(self, key: bytes) -> Gen:
        self._leases.pop(key, None)
        if self.is_owner(key):
            self._fan_out(RequestCode.SHARD_INVALIDATE, key, None)
        yield from ()

    def _fan_out(self, code: int, key: bytes,
                 binding: Optional[PrefixBinding]) -> None:
        """Notify every peer of a binding change, via a helper process."""
        if self.host is None or self.host.crashed:
            return
        peers = [Pid(pv) for rid, pv in self.shard_map.replicas
                 if rid != self.replica_id]
        if not peers:
            return
        self.host.spawn(self._fan_out_task(code, key, binding, peers),
                        name=f"shard-fanout-{as_text(key)}")

    def _fan_out_task(self, code: int, key: bytes,
                      binding: Optional[PrefixBinding], peers: list) -> Gen:
        fields: dict = {"prefix": as_text(key), "lease": self.lease_ttl}
        if binding is not None:
            fields.update(binding_fields(binding))
            # The binding's provenance rides as explicit notice fields (NOT
            # inside binding_fields: that codec also feeds export_table's
            # *charged* JSON segment, and epochs must stay wire-neutral).
            fields["epoch"] = int(binding.epoch)
            fields["source"] = int(binding.source)
        else:
            # An invalidation carries the deletion's tombstone epoch.
            fields["epoch"] = int(self.tombstones.get(key, 0))
            fields["source"] = int(self.pid.value) if self.pid else 0
        probe = self._probe()
        for peer in peers:
            if probe is not None:
                probe.notice_sent(key, int(peer.value),
                                  self.host.domain.now)
            yield Send(peer, Message.request(code, **fields))
            # A dead peer times out after the probe budget; it will pull a
            # fresh table when it rejoins, so the notice owes it nothing.

    # --------------------------------------------------------- shard protocol

    @staticmethod
    def _prefix_of(message: Message) -> bytes:
        return str(message.get("prefix", "")).encode()

    def op_shard_fetch(self, delivery: Delivery) -> Gen:
        """Owner side of a replica's lease refresh."""
        prefix = self._prefix_of(delivery.message)
        if not self.is_owner(prefix):
            owner = self.owner_pid(prefix)
            yield from self.reply_error(
                delivery, ReplyCode.RETRY,
                shard_version=self.shard_map.version,
                **({"owner_pid": int(owner.value)} if owner else {}))
            return
        binding = self.table.bindings.get(prefix)
        if binding is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND,
                                        shard_version=self.shard_map.version)
            return
        now = yield Now()
        self._leases[prefix] = now + self.lease_ttl
        yield from self.reply_ok(delivery, lease=self.lease_ttl,
                                 shard_version=self.shard_map.version,
                                 epoch=int(binding.epoch),
                                 source=int(binding.source),
                                 **binding_fields(binding))

    def op_shard_sync(self, delivery: Delivery) -> Gen:
        """Owner -> replica: install a (re)bound binding under a lease."""
        message = delivery.message
        key = self._prefix_of(message)
        binding = binding_from_fields(key, message)
        if not key or binding is None:
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        now = yield Now()
        rebound = key in self.table.bindings
        binding.epoch = int(message.get("epoch", 0))
        binding.source = int(message.get("source", 0))
        self.table.bindings[key] = binding
        self._leases[key] = now + float(message.get("lease", self.lease_ttl))
        self.syncs_seen += 1
        probe = self._probe()
        if probe is not None:
            probe.notice_applied(key, int(self.pid.value) if self.pid else 0,
                                 self.host.name, now)
        if rebound:
            self._notify_invalidate(key)
        yield from self.reply_ok(delivery,
                                 shard_version=self.shard_map.version)

    def op_shard_invalidate(self, delivery: Delivery) -> Gen:
        """Owner -> replica: a binding was deleted."""
        key = self._prefix_of(delivery.message)
        existed = self.table.bindings.pop(key, None) is not None
        self._leases.pop(key, None)
        self.invalidations_seen += 1
        # Remember the deletion's epoch so an audit can tell "recently
        # unbound" from "never existed" at this replica too.
        notice_epoch = int(delivery.message.get("epoch", 0))
        if notice_epoch:
            self.tombstones[key] = notice_epoch
        probe = self._probe()
        if probe is not None:
            probe.notice_applied(key, int(self.pid.value) if self.pid else 0,
                                 self.host.name, self.host.domain.now)
        if existed:
            self._notify_invalidate(key)
        yield from self.reply_ok(delivery,
                                 shard_version=self.shard_map.version)

    def op_shard_map(self, delivery: Delivery) -> Gen:
        """Serve the current shard map (resolvers catch up through this)."""
        yield from self.reply_ok(delivery, segment=self.shard_map.encode(),
                                 shard_version=self.shard_map.version)

    def op_shard_pull(self, delivery: Delivery) -> Gen:
        """Bulk table transfer for a rejoining replica.

        Provenance stamps ride as a reply *field* (flat-charged), never in
        the segment: growing the charged JSON payload would change the
        transfer's simulated timing, and epochs are bookkeeping, not data.
        """
        now = yield Now()
        epochs = {as_text(key): [int(binding.epoch), int(binding.source)]
                  for key, binding in self.table.bindings.items()}
        yield from self.reply_ok(delivery, segment=self.export_table(now),
                                 shard_version=self.shard_map.version,
                                 epochs=epochs)

    # ----------------------------------------------------------- bulk state

    def export_table(self, now: float) -> bytes:
        """The full table with per-entry remaining lease, JSON-encoded.

        Entries this replica *owns* export a full ``lease_ttl`` (we are the
        authority; the puller holds them under a lease from us); entries we
        merely hold under lease export only what remains of it -- a rejoin
        must not launder a nearly-dead lease into a fresh one.
        """
        records = []
        for key in sorted(self.table.bindings):
            binding = self.table.bindings[key]
            if self.is_owner(key):
                remaining = self.lease_ttl
            else:
                remaining = max(0.0, self._leases.get(key, 0.0) - now)
            record = {"prefix": as_text(key), "lease_remaining": remaining}
            record.update(binding_fields(binding))
            records.append(record)
        return json.dumps({"bindings": records}, sort_keys=True).encode()

    def install_table(self, payload: bytes, now: float,
                      epochs: Optional[dict] = None) -> int:
        """Install a pulled table; returns how many bindings landed.

        ``epochs`` is the PULL reply's sideband provenance map
        (prefix text -> [epoch, source]); absent entries install as
        (0, 0) -- unknown -- which the auditor treats as unverifiable
        rather than incoherent.
        """
        doc = json.loads(payload)
        installed = 0
        for record in doc.get("bindings", []):
            key = str(record["prefix"]).encode()
            binding = ContextPrefixServer._binding_from_request(
                key, Message.request(0, **{
                    field: record[field] for field in
                    ("service_id", "target_pid", "target_context")
                    if field in record}))
            if binding is None:
                continue
            stamp = (epochs or {}).get(str(record["prefix"]))
            if stamp:
                binding.epoch = int(stamp[0])
                binding.source = int(stamp[1])
            self.table.bindings[key] = binding
            remaining = float(record.get("lease_remaining", 0.0))
            if remaining > 0:
                self._leases[key] = now + remaining
            installed += 1
        return installed

    # ------------------------------------------------------------ inspection

    def snapshot_shard(self) -> dict:
        return {
            "replica_id": self.replica_id,
            "map_version": self.shard_map.version,
            "bindings": len(self.table.bindings),
            "leases": len(self._leases),
            "lease_refusals": self.lease_refusals,
            "lease_refreshes": self.lease_refreshes,
            "syncs_seen": self.syncs_seen,
            "invalidations_seen": self.invalidations_seen,
            "expired_served": self.expired_served,
        }

    def coherence_entries(self, now: float) -> list[dict]:
        """Every table entry with its provenance and lease state.

        Plain memory reads (zero simulated cost) for the coherence payload
        at ``[obs]/hosts/<host>/coherence`` and the direct auditor; the
        simulated price of *reading* it over the wire is paid by the
        introspection messages, as with every other [obs] leaf.
        """
        entries = []
        for key in sorted(self.table.bindings):
            binding = self.table.bindings[key]
            expiry = self._leases.get(key)
            entries.append({
                "prefix": as_text(key),
                "epoch": int(binding.epoch),
                "source": int(binding.source),
                "is_owner": self.is_owner(key),
                "lease_expiry": expiry,
                "lease_fresh": (self.is_owner(key)
                                or (expiry is not None and now < expiry)),
            })
        return entries


# ------------------------------------------------------------- the cluster


class ShardCluster:
    """N replicas, one versioned map, and the failover/rejoin machinery.

    The cluster object is the membership service.  V kept equivalent state
    kernel-resident and reachable at zero cost from every machine's kernel;
    we keep the same modelling shortcut the prefix-notice channel uses: map
    installs into *live servers* are shared-memory writes (zero simulated
    cost, synchronous within the crash/restart event).  Resolvers get no
    such favour -- they hold map copies and catch up strictly over the
    wire, which is the part failover latency actually depends on.
    """

    def __init__(self, domain, hosts, lease_ttl: float = 1.0,
                 vnodes: int = DEFAULT_VNODES, parse_cpu: float = 0.0) -> None:
        from repro.servers.base import start_server

        if not hosts:
            raise ValueError("a shard cluster needs at least one host")
        self.domain = domain
        self.lease_ttl = float(lease_ttl)
        self.vnodes = int(vnodes)
        self.parse_cpu = float(parse_cpu)
        self.servers: dict = {}        # replica id -> live ShardReplicaServer
        self.handles: dict = {}
        self.retired: list = []        # crashed server objects (accounting)
        self._rid_by_host: dict = {}
        self.promotions = 0
        self.rejoins = 0
        self.map = ShardMap(version=0, replicas=(), vnodes=self.vnodes)
        replicas = []
        for replica_id, host in enumerate(hosts):
            server = self._spawn_replica(replica_id, host)
            replicas.append((replica_id, server.pid_value))
        self.map = ShardMap(version=1, replicas=tuple(sorted(replicas)),
                            vnodes=self.vnodes)
        self._install_map()
        #: Seed-time mutation counter: boot-time installs get provenance
        #: stamps too (source 0 = pre-kernel), so a seeded binding audits
        #: the same way a run-time one does.
        self._seed_epoch = 0
        domain.on_host_crashed(self._on_host_crashed)
        domain.on_host_restarted(self._on_host_restarted)
        # Registered so the coherence auditor (repro.obs.audit) can find
        # every cluster's authoritative state without being handed refs.
        if hasattr(domain, "shard_clusters"):
            domain.shard_clusters.append(self)

    def _spawn_replica(self, replica_id: int, host) -> "_SpawnedReplica":
        from repro.servers.base import start_server

        server = ShardReplicaServer(replica_id, self.map,
                                    lease_ttl=self.lease_ttl,
                                    parse_cpu=self.parse_cpu)
        handle = start_server(host, server, name=f"shard-replica-{replica_id}")
        server.host = host
        self.servers[replica_id] = server
        self.handles[replica_id] = handle
        self._rid_by_host[host.host_id] = replica_id
        return _SpawnedReplica(server, handle.pid.value)

    # ------------------------------------------------------------- bootstrap

    def seed_binding(self, name: str | bytes, pair: ContextPair = None,
                     service: Optional[int] = None,
                     context_id: int = int(WellKnownContext.DEFAULT)) -> None:
        """Install one binding into every live replica, leased from now.

        Boot-time bulk load, the cluster analogue of ``standard_prefixes``:
        zero simulated cost, shared-memory installs.  Run-time binds go
        through ADD_CONTEXT_NAME and the owner's fan-out instead.
        """
        key = validate_component(_as_prefix(name))
        if service is not None:
            binding = PrefixBinding(name=key, generic_service=int(service),
                                    generic_context=int(context_id))
        else:
            if pair is None:
                raise ValueError("seed_binding needs a pair or a service")
            binding = PrefixBinding(name=key, fixed=pair)
        self._seed_epoch += 1
        binding.epoch = self._seed_epoch
        now = self.domain.now
        for server in self.servers.values():
            server.table.bindings[key] = binding
            server._leases[key] = now + self.lease_ttl

    def primary_pid(self) -> Pid:
        """A stable entry-point pid (lowest live replica id)."""
        if not self.map.replicas:
            raise ValueError("no live replicas")
        return Pid(self.map.replicas[0][1])

    def resolver(self, binding_ttl: Optional[float] = None,
                 negative_ttl: float = 0.25, max_entries: int = 2048,
                 registry=None, host=None) -> "ShardResolver":
        """A per-host resolver daemon wired to the current map.

        Pass ``host`` to register the resolver for coherence observability:
        the auditor and the ``[obs]/hosts/<host>/coherence`` leaf find it
        through ``domain.shard_resolvers``.
        """
        return ShardResolver(self.map,
                             binding_ttl=binding_ttl or self.lease_ttl,
                             negative_ttl=negative_ttl,
                             max_entries=max_entries, registry=registry,
                             host=host)

    # ------------------------------------------------------------- membership

    def _install_map(self) -> None:
        for server in self.servers.values():
            server.shard_map = self.map

    def _on_host_crashed(self, host) -> None:
        replica_id = self._rid_by_host.get(host.host_id)
        if replica_id is None:
            return
        server = self.servers.pop(replica_id, None)
        self.handles.pop(replica_id, None)
        if server is not None:
            self.retired.append(server)
        if self.map.pid_of(replica_id) is None:
            return
        # Failover: drop the dead replica; every prefix it owned hashes to
        # the next live replica on the ring.  Synchronous within the crash
        # event, so survivors answer for the moved prefixes before any
        # in-flight lookup even times out.
        self.map = self.map.without(replica_id)
        if self.map.replicas:
            self.promotions += 1
        self._install_map()

    def _on_host_restarted(self, host) -> None:
        replica_id = self._rid_by_host.get(host.host_id)
        if replica_id is None or replica_id in self.servers:
            return
        peers = [(rid, pv) for rid, pv in self.map.replicas
                 if rid != replica_id]
        spawned = self._spawn_replica(replica_id, host)
        host.spawn(self._rejoin_task(replica_id, spawned.server,
                                     spawned.pid_value, peers),
                   name=f"shard-rejoin-{replica_id}")

    def _rejoin_task(self, replica_id: int, server: ShardReplicaServer,
                     pid_value: int, peers: list) -> Gen:
        for __, peer_pid_value in peers:
            reply = yield Send(Pid(peer_pid_value),
                               Message.request(RequestCode.SHARD_PULL))
            if reply.ok and reply.segment:
                now = yield Now()
                server.install_table(reply.segment, now,
                                     epochs=reply.get("epochs"))
                break
        # Adopt into the map only after the warm-up: a rejoined replica
        # that claimed ownership over an empty table would answer
        # authoritative NOT_FOUNDs for names it simply has not learned yet.
        if server.host is None or server.host.crashed:
            return
        self.map = self.map.with_replica(replica_id, pid_value)
        self.rejoins += 1
        self._install_map()

    # ------------------------------------------------------------ inspection

    def live_replicas(self) -> list:
        return sorted(self.servers)

    def all_servers(self) -> list:
        """Every replica server the cluster ever ran, live and retired."""
        return list(self.servers.values()) + list(self.retired)

    def snapshot(self) -> dict:
        return {
            "map_version": self.map.version,
            "live": self.live_replicas(),
            "promotions": self.promotions,
            "rejoins": self.rejoins,
            "replicas": [server.snapshot_shard()
                         for server in self.all_servers()],
        }


@dataclass
class _SpawnedReplica:
    server: ShardReplicaServer
    pid_value: int


# ------------------------------------------------------------ the resolver


class ShardResolver:
    """Per-host resolver daemon over the shard cluster.

    Duck-types the cache contract of :func:`repro.core.resolver.
    send_csname_request` (``should_route`` / ``route`` / ``learn`` /
    ``is_stale_reply`` / ``invalidate_route``) plus the ``fallback_route``
    hook, which is where the hierarchy lives: positive binding cache first,
    then the mapped shard owner, then the replica ring.
    """

    def __init__(self, shard_map: ShardMap, binding_ttl: float = 1.0,
                 negative_ttl: float = 0.25, max_entries: int = 2048,
                 registry=None, host=None) -> None:
        self.map = shard_map
        #: prefix -> ContextPair, TTL-bound: a client must not keep using a
        #: binding longer than the replicas' own lease discipline would.
        self._bindings = BindingCache(max_entries=max_entries,
                                     ttl=binding_ttl)
        #: full name -> True, short-TTL: authoritative NOT_FOUNDs answered
        #: locally (NEGATIVE_ROUTE) while fresh.
        self._negative = BindingCache(max_entries=max_entries,
                                      ttl=negative_ttl)
        self.stats = CacheStats()
        self.registry = registry
        #: The host this resolver serves, when known: names the resolver in
        #: coherence samples and registers it for the auditor's fleet walk.
        self.host = host
        if host is not None and hasattr(host.domain, "shard_resolvers"):
            host.domain.shard_resolvers[host.host_id] = self
        self._last_dst: Optional[Pid] = None
        self.negative_hits = 0
        self.negative_stores = 0
        self.redirects_followed = 0
        self.map_refreshes = 0

    def _probe(self):
        """The domain's coherence probe when armed and a host is known."""
        if self.host is None:
            return None
        return getattr(self.host.domain, "coherence", None)

    # -------------------------------------------------------------- counters

    def _hit(self, source: str) -> None:
        self.stats.hits += 1
        by = self.stats.hits_by_source
        by[source] = by.get(source, 0) + 1
        if self.registry is not None:
            self.registry.counter("namecache.hits", source=source).incr()

    def _miss(self) -> None:
        self.stats.misses += 1
        if self.registry is not None:
            self.registry.counter("namecache.misses").incr()

    # --------------------------------------------------------------- routing

    def should_route(self, data: bytes, code: int) -> bool:
        from repro.core.namecache import CACHE_BYPASS_OPS

        return int(code) not in CACHE_BYPASS_OPS and has_prefix(data)

    def route(self, data: bytes) -> Gen:
        now = yield Now()
        probe = self._probe()
        if self._negative.get(data, now) is not None:
            self.negative_hits += 1
            self._hit("negative")
            if probe is not None:
                probe.negcache_hit(self.host.name)
            return NEGATIVE_ROUTE
        try:
            prefix, rest_index = parse_prefix(data)
        except BadName:
            return None
        entry = self._bindings.get(prefix, now)
        if entry is None:
            self._miss()
            return None
        if probe is not None:
            meta = self._bindings.meta(prefix)
            if meta is not None:
                # How old the entry being served is, in simulated seconds:
                # staleness at hit, the quantity TTLs merely bound.
                probe.stale_hit(self.host.name, now - meta[1])
        self._hit("shard")
        return CachedRoute(entry.server, entry.context_id, rest_index,
                           "shard", prefix=prefix)

    def fallback_route(self, data: bytes, attempt: int,
                       reply=None) -> Gen:
        """Full resolution, shard-style: aim at whoever owns the prefix.

        Attempt 0 trusts the local map copy.  A RETRY reply carrying an
        ``owner_pid`` redirect is followed verbatim.  Any other failed
        attempt means the map copy may be stale (owner crashed): refresh
        it over the wire from the first live replica that answers, then
        aim at the refreshed map's owner -- which is exactly the replica
        the cluster promoted, because both sides hash the same ring.
        """
        try:
            prefix, __ = parse_prefix(data)
        except BadName:
            return None
        if reply is not None:
            redirect = reply.get("owner_pid")
            if redirect is not None:
                self.redirects_followed += 1
                return self._aim(Pid(int(redirect)))
        refreshed = False
        if attempt > 0:
            refreshed = yield from self._refresh_map()
        order = self.map.replicas_for(prefix)
        if not order:
            return None
        if refreshed or attempt == 0:
            candidate = order[0]
        else:
            # Could not refresh (everyone we asked was dead or silent):
            # walk the ring past the corpse rather than re-sending to it.
            candidate = order[min(attempt, len(order) - 1)]
        pid = self.map.pid_of(candidate)
        if pid is None:
            return None
        return self._aim(pid)

    def _aim(self, pid: Pid) -> tuple:
        self._last_dst = pid
        return pid, int(WellKnownContext.DEFAULT), 0

    def _refresh_map(self) -> Gen:
        """Fetch the current map over the wire; True if anyone answered.

        The replica the last attempt died against goes to the back of the
        candidate list -- no point asking the corpse first.  If *every*
        pid in the stale map copy is dead (a restarted replica runs under
        a fresh pid the old map never heard of), fall back to a kernel
        GetPid broadcast on the SHARD service -- the paper's "GetPid at
        time of use" rule, reused here as the bootstrap of last resort.
        """
        candidates = [Pid(pv) for __, pv in self.map.replicas]
        last = self._last_dst
        ordered = ([pid for pid in candidates if pid != last]
                   + [pid for pid in candidates if pid == last])
        for pid in ordered:
            if (yield from self._adopt_map_from(pid)):
                return True
        found = yield GetPid(int(ServiceId.SHARD), Scope.ANY)
        if found is not None and found not in ordered:
            return (yield from self._adopt_map_from(found))
        return False

    def _adopt_map_from(self, pid: Pid) -> Gen:
        reply = yield Send(pid, Message.request(RequestCode.SHARD_MAP))
        if reply.ok and reply.segment:
            fresh = ShardMap.decode(reply.segment)
            if fresh.version > self.map.version:
                self.map = fresh
                self.map_refreshes += 1
            return True
        return False

    # -------------------------------------------------------------- learning

    def learn(self, data: bytes, reply: Message,
              now: Optional[float] = None) -> None:
        if reply.code == int(ReplyCode.NOT_FOUND):
            if now is not None and not reply.get("negative_cached"):
                self._negative.put(bytes(data), True, now)
                self.negative_stores += 1
            return
        if not reply.ok:
            return
        self._negative.invalidate(bytes(data))
        advice = read_binding_advice(reply)
        if advice is None:
            return
        pair, index, service = advice
        try:
            prefix, rest_index = parse_prefix(data)
        except BadName:
            return
        if index != rest_index or service is not None:
            # Multi-hop consumption, or a generic binding whose pid must be
            # re-resolved per use: the prefix-level binding is unknowable.
            return
        if now is not None:
            provenance = read_binding_provenance(reply) or (0, 0)
            self._bindings.put(prefix,
                               ContextPair(pair.server, pair.context_id), now,
                               epoch=provenance[0], source=provenance[1])

    def note_mutation(self, data: bytes, code: int) -> None:
        """A table mutation this client sent succeeded; reconcile caches.

        ADD/DELETE_CONTEXT_NAME bypass the cache on the way out
        (:data:`~repro.core.namecache.CACHE_BYPASS_OPS`), so ``learn``
        never sees them -- but their success changes what cached answers
        are still right.  A *create* must kill negative entries for names
        under the prefix (a cached NOT_FOUND for a now-bound name would
        keep answering NOT_FOUND until its TTL lapsed) and drop the
        positive binding (a rebind repointed it); a *delete* drops the
        positive binding (the negative cache needs no help -- NOT_FOUND
        is now the truth).
        """
        try:
            prefix, __ = parse_prefix(data)
        except BadName:
            return
        if int(code) == int(RequestCode.ADD_CONTEXT_NAME):
            needle = b"[" + prefix + b"]"
            self._negative.invalidate_where(
                lambda key, __: bytes(key).startswith(needle))
        self._bindings.invalidate(prefix)

    # ---------------------------------------------------------- invalidation

    def is_stale_reply(self, reply: Message) -> bool:
        return reply.code in _STALE_CODE_INTS

    def invalidate_route(self, data: bytes, route: CachedRoute,
                         code: int) -> None:
        self.stats.fallbacks += 1
        if self.registry is not None:
            self.registry.counter("namecache.fallbacks").incr()
        dropped = 0
        if route.prefix is not None and self._bindings.invalidate(route.prefix):
            dropped = 1
        # The accounting invariant (invalidations >= fallbacks) holds even
        # when TTL expiry already removed the entry between route() and now.
        self.stats.invalidations += max(dropped, 1)
        if self.registry is not None:
            self.registry.counter("namecache.invalidations",
                                  reason="stale-reply").incr(max(dropped, 1))

    def invalidate_prefix(self, prefix: bytes, reason: str = "notice") -> int:
        """Proactive notice channel, same shape as NameCache's."""
        dropped = 1 if self._bindings.invalidate(bytes(prefix)) else 0
        if dropped:
            self.stats.invalidations += dropped
            if self.registry is not None:
                self.registry.counter("namecache.invalidations",
                                      reason=reason).incr(dropped)
        return dropped

    def clear(self) -> None:
        self._bindings.clear()
        self._negative.clear()

    # ------------------------------------------------------------ inspection

    def footprint(self) -> dict:
        return {"bindings": len(self._bindings),
                "negative": len(self._negative)}

    def coherence_entries(self, now: float) -> dict:
        """Cache contents with provenance, for the coherence auditor.

        Raw (uncounted) reads: auditing the resolver must not perturb its
        hit/miss accounting or LRU order.  ``age`` is simulated seconds
        since install; entries past their TTL are reported with
        ``expired: true`` rather than hidden -- the auditor wants to see
        what a lazy cache still *holds*, not only what it would serve.
        """
        ttl = self._bindings.ttl
        positive = []
        for key, value, stamp, epoch, source in self._bindings.entries_meta():
            positive.append({
                "prefix": as_text(key),
                "server_pid": int(value.server.value),
                "context_id": int(value.context_id),
                "installed_at": stamp,
                "age": now - stamp,
                "epoch": int(epoch),
                "source": int(source),
                "expired": ttl is not None and now - stamp >= ttl,
            })
        negative_ttl = self._negative.ttl
        negative = []
        for key, __, stamp, *___ in self._negative.entries_meta():
            negative.append({
                "name": as_text(key),
                "installed_at": stamp,
                "age": now - stamp,
                "expired": (negative_ttl is not None
                            and now - stamp >= negative_ttl),
            })
        return {"map_version": self.map.version,
                "binding_ttl": ttl, "negative_ttl": negative_ttl,
                "bindings": positive, "negative": negative}

    def snapshot(self) -> dict:
        return {
            "map_version": self.map.version,
            "footprint": self.footprint(),
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "fallbacks": self.stats.fallbacks,
                "invalidations": self.stats.invalidations,
                "hit_rate": self.stats.hit_rate,
                "hits_by_source": dict(self.stats.hits_by_source),
            },
            "negative_hits": self.negative_hits,
            "negative_stores": self.negative_stores,
            "redirects_followed": self.redirects_followed,
            "map_refreshes": self.map_refreshes,
        }
