"""Contexts (paper Sec. 5.2).

"Formally, a context is a set of (name, object)-tuples. ... In the V-System,
a context is specified by the pair (server-pid, context-identifier)."

Ordinary context identifiers are server-assigned and valid only while the
server process lives; several *well-known* identifiers with fixed values name
generic spaces like "home directory" and "standard program directory", and a
server implementing a single context uses the default identifier 0.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.kernel.pids import Pid


class WellKnownContext(enum.IntEnum):
    """Fixed context identifiers (Sec. 5.2).

    The high end of the 16-bit space is reserved so server-assigned ids can
    never collide with them.
    """

    #: "when a server implements only one context, the context identifier
    #: has little meaning and uses a standard default value of 0."
    DEFAULT = 0x0000
    #: The user's home directory on a storage server.
    HOME = 0xFFF1
    #: The standard program directory ("/bin" analogue).
    PROGRAMS = 0xFFF2
    #: Public/shared storage.
    PUBLIC = 0xFFF3
    #: Scratch space.
    TEMP = 0xFFF4


#: First and last ordinary (server-assigned) context identifiers.
ORDINARY_CONTEXT_MIN = 0x0001
ORDINARY_CONTEXT_MAX = 0xFF00


@dataclass(frozen=True, order=True)
class ContextPair:
    """A fully-qualified context: (server-pid, context-identifier).

    Given this pair plus a byte string, "the interpretation of the name is
    fully specified independent of the operation requested" (Sec. 5.2).
    """

    server: Pid
    context_id: int

    def __post_init__(self) -> None:
        if not 0 <= self.context_id <= 0xFFFF:
            raise ValueError(f"context id out of 16-bit range: {self.context_id:#x}")

    def __repr__(self) -> str:
        try:
            ctx = WellKnownContext(self.context_id).name
        except ValueError:
            ctx = f"{self.context_id:#06x}"
        return f"ContextPair({self.server!r}, {ctx})"


class ContextIdAllocator:
    """Server-side allocator of ordinary context identifiers.

    Like pid and instance-id allocation, it walks the id space to maximize
    time-before-reuse: a released id is not handed out again until the
    allocator has wrapped around the whole ordinary range.
    """

    def __init__(self, start: int = ORDINARY_CONTEXT_MIN) -> None:
        if not ORDINARY_CONTEXT_MIN <= start <= ORDINARY_CONTEXT_MAX:
            raise ValueError(f"start {start:#x} outside the ordinary range")
        self._next = start
        self._live: set[int] = set()

    def allocate(self) -> int:
        span = ORDINARY_CONTEXT_MAX - ORDINARY_CONTEXT_MIN + 1
        if len(self._live) >= span:
            raise RuntimeError("context id space exhausted")
        candidate = self._next
        while candidate in self._live:
            candidate = self._advance(candidate)
        self._next = self._advance(candidate)
        self._live.add(candidate)
        return candidate

    @staticmethod
    def _advance(value: int) -> int:
        value += 1
        if value > ORDINARY_CONTEXT_MAX:
            value = ORDINARY_CONTEXT_MIN
        return value

    def release(self, context_id: int) -> None:
        self._live.discard(context_id)

    def is_live(self, context_id: int) -> bool:
        return context_id in self._live

    @property
    def live_count(self) -> int:
        return len(self._live)
