"""Typed object description records (paper Sec. 5.5, Figure 3).

A query on an object returns a *description record* whose first field is a
tag identifying the record format -- "similar to the technique used with
request messages" -- so a client can handle objects whose type it did not
know in advance, and check that an object is of the type it expects.

Description records are also the unit context directories are made of
(Sec. 5.6): a context directory is logically a file of these records, and
*writing* one back has the same semantics as the modification operation.
Servers are "free to ignore changes to any fields which it makes no sense to
change"; each record type declares its mutable fields and
:func:`apply_modification` implements exactly that rule.

Records have a compact binary encoding (tag, then spec-driven fields) because
directory contents travel as file bytes over the I/O protocol.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, fields as dataclass_fields
from typing import ClassVar, Type


class DescriptorTag(enum.IntEnum):
    """Record format tags.  One per object type in the system."""

    FILE = 1
    CONTEXT = 2          # a directory / sub-context
    PROCESS = 3          # a program in execution (team server)
    TERMINAL = 4         # a virtual graphics terminal
    TCP_CONNECTION = 5   # internet server connection
    CONTEXT_PREFIX = 6   # an entry in a context prefix server
    MAILBOX = 7
    PRINT_JOB = 8
    PIPE = 9
    NAME_BINDING = 10    # centralized-baseline registry entry
    STAT = 11            # a live introspection object ([obs] stat server)


class DescriptorError(ValueError):
    """Malformed record bytes or inconsistent record usage."""


#: Wire kinds for record fields.
_PACKERS = {
    "u16": (struct.Struct(">H"), int),
    "u32": (struct.Struct(">I"), int),
    "u64": (struct.Struct(">Q"), int),
    "f64": (struct.Struct(">d"), float),
    "bool": (struct.Struct(">B"), bool),
}

_TAG_STRUCT = struct.Struct(">H")
_STR_LEN = struct.Struct(">H")

_REGISTRY: dict[int, Type["ObjectDescription"]] = {}


@dataclass
class ObjectDescription:
    """Base class for all description records.

    Subclasses set ``TAG``, list their wire layout in ``SPECS`` (attribute
    name, wire kind), and declare which attributes the modification operation
    may change in ``MUTABLE``.  ``name`` is always present: "the name of an
    entity is just one of its attributes" (Sec. 2.3).
    """

    name: str

    TAG: ClassVar[DescriptorTag]
    SPECS: ClassVar[tuple[tuple[str, str], ...]] = ()
    MUTABLE: ClassVar[frozenset] = frozenset()

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if hasattr(cls, "TAG"):
            existing = _REGISTRY.get(int(cls.TAG))
            if existing is not None and existing is not cls:
                raise DescriptorError(f"tag {cls.TAG!r} already registered")
            _REGISTRY[int(cls.TAG)] = cls

    # ------------------------------------------------------------- encoding

    def encode(self) -> bytes:
        out = bytearray(_TAG_STRUCT.pack(int(self.TAG)))
        out += _encode_str(self.name)
        for attr, kind in self.SPECS:
            value = getattr(self, attr)
            if kind == "str":
                out += _encode_str(value)
            else:
                packer, coerce = _PACKERS[kind]
                try:
                    out += packer.pack(coerce(value))
                except struct.error as err:
                    raise DescriptorError(
                        f"{type(self).__name__}.{attr}={value!r} does not fit {kind}"
                    ) from err
        return bytes(out)

    @staticmethod
    def decode(data: bytes, offset: int = 0) -> tuple["ObjectDescription", int]:
        """Decode one record at ``offset``; returns (record, next_offset)."""
        if offset + _TAG_STRUCT.size > len(data):
            raise DescriptorError("truncated record: no tag")
        (tag,) = _TAG_STRUCT.unpack_from(data, offset)
        offset += _TAG_STRUCT.size
        cls = _REGISTRY.get(tag)
        if cls is None:
            raise DescriptorError(f"unknown descriptor tag {tag}")
        name, offset = _decode_str(data, offset)
        values: dict = {"name": name}
        for attr, kind in cls.SPECS:
            if kind == "str":
                values[attr], offset = _decode_str(data, offset)
            else:
                packer, __ = _PACKERS[kind]
                if offset + packer.size > len(data):
                    raise DescriptorError(f"truncated record in field {attr!r}")
                (raw,) = packer.unpack_from(data, offset)
                values[attr] = bool(raw) if kind == "bool" else raw
                offset += packer.size
        return cls(**values), offset

    @staticmethod
    def decode_all(data: bytes) -> list["ObjectDescription"]:
        """Decode a concatenated record stream (a context directory image)."""
        records: list[ObjectDescription] = []
        offset = 0
        while offset < len(data):
            record, offset = ObjectDescription.decode(data, offset)
            records.append(record)
        return records

    # ------------------------------------------------------------ modification

    def apply_modification(self, replacement: "ObjectDescription") -> "ObjectDescription":
        """The uniform modify operation (Sec. 5.5).

        Takes a record of the same type and "overwrites" this one -- but only
        the fields this type declares mutable; everything else is silently
        ignored, as the protocol allows.
        """
        if type(replacement) is not type(self):
            raise DescriptorError(
                f"modification record is {type(replacement).__name__}, "
                f"object is {type(self).__name__}"
            )
        values = {f.name: getattr(self, f.name) for f in dataclass_fields(self)}
        for attr in self.MUTABLE:
            values[attr] = getattr(replacement, attr)
        return type(self)(**values)


def _encode_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise DescriptorError("string field too long")
    return _STR_LEN.pack(len(raw)) + raw


def _decode_str(data: bytes, offset: int) -> tuple[str, int]:
    if offset + _STR_LEN.size > len(data):
        raise DescriptorError("truncated record: string length")
    (length,) = _STR_LEN.unpack_from(data, offset)
    offset += _STR_LEN.size
    if offset + length > len(data):
        raise DescriptorError("truncated record: string bytes")
    return data[offset : offset + length].decode("utf-8"), offset + length


def descriptor_class(tag: int) -> Type[ObjectDescription]:
    cls = _REGISTRY.get(int(tag))
    if cls is None:
        raise DescriptorError(f"unknown descriptor tag {tag}")
    return cls


# ---------------------------------------------------------------------------
# Concrete record types.
# ---------------------------------------------------------------------------


@dataclass
class FileDescription(ObjectDescription):
    """A storage-server file (the Figure 3 example record)."""

    size_bytes: int = 0
    owner: str = ""
    access: int = 0o644
    created: float = 0.0
    modified: float = 0.0
    block_size: int = 512

    TAG = DescriptorTag.FILE
    SPECS = (
        ("size_bytes", "u64"),
        ("owner", "str"),
        ("access", "u16"),
        ("created", "f64"),
        ("modified", "f64"),
        ("block_size", "u16"),
    )
    MUTABLE = frozenset({"owner", "access"})


@dataclass
class ContextDescription(ObjectDescription):
    """A directory / sub-context."""

    entry_count: int = 0
    owner: str = ""
    access: int = 0o755
    context_id: int = 0

    TAG = DescriptorTag.CONTEXT
    SPECS = (
        ("entry_count", "u32"),
        ("owner", "str"),
        ("access", "u16"),
        ("context_id", "u16"),
    )
    MUTABLE = frozenset({"owner", "access"})


@dataclass
class ProcessDescription(ObjectDescription):
    """A program in execution (team server context)."""

    pid_value: int = 0
    program: str = ""
    state: str = "ready"
    start_time: float = 0.0
    priority: int = 0

    TAG = DescriptorTag.PROCESS
    SPECS = (
        ("pid_value", "u32"),
        ("program", "str"),
        ("state", "str"),
        ("start_time", "f64"),
        ("priority", "u16"),
    )
    MUTABLE = frozenset({"priority"})


@dataclass
class TerminalDescription(ObjectDescription):
    """A virtual graphics terminal (transient object)."""

    terminal_id: int = 0
    rows: int = 24
    cols: int = 80
    owner: str = ""

    TAG = DescriptorTag.TERMINAL
    SPECS = (
        ("terminal_id", "u16"),
        ("rows", "u16"),
        ("cols", "u16"),
        ("owner", "str"),
    )
    MUTABLE = frozenset({"rows", "cols"})


@dataclass
class TcpConnectionDescription(ObjectDescription):
    """A TCP connection implemented by the internet server."""

    local_port: int = 0
    remote_host: str = ""
    remote_port: int = 0
    state: str = "closed"
    bytes_in: int = 0
    bytes_out: int = 0

    TAG = DescriptorTag.TCP_CONNECTION
    SPECS = (
        ("local_port", "u16"),
        ("remote_host", "str"),
        ("remote_port", "u16"),
        ("state", "str"),
        ("bytes_in", "u64"),
        ("bytes_out", "u64"),
    )
    MUTABLE = frozenset()


@dataclass
class PrefixDescription(ObjectDescription):
    """One entry in a context prefix server (Sec. 6).

    Either a fixed (server-pid, context-id) binding or a *generic* binding
    (logical service id + well-known context) resolved by GetPid at each use.
    """

    server_pid: int = 0
    context_id: int = 0
    generic: bool = False
    service_id: int = 0

    TAG = DescriptorTag.CONTEXT_PREFIX
    SPECS = (
        ("server_pid", "u32"),
        ("context_id", "u16"),
        ("generic", "bool"),
        ("service_id", "u16"),
    )
    MUTABLE = frozenset()


@dataclass
class MailboxDescription(ObjectDescription):
    owner: str = ""
    message_count: int = 0
    unread: int = 0

    TAG = DescriptorTag.MAILBOX
    SPECS = (
        ("owner", "str"),
        ("message_count", "u32"),
        ("unread", "u32"),
    )
    MUTABLE = frozenset()


@dataclass
class PrintJobDescription(ObjectDescription):
    owner: str = ""
    pages: int = 0
    state: str = "queued"
    submitted: float = 0.0

    TAG = DescriptorTag.PRINT_JOB
    SPECS = (
        ("owner", "str"),
        ("pages", "u32"),
        ("state", "str"),
        ("submitted", "f64"),
    )
    MUTABLE = frozenset({"state"})


@dataclass
class PipeDescription(ObjectDescription):
    buffered_bytes: int = 0
    readers: int = 0
    writers: int = 0

    TAG = DescriptorTag.PIPE
    SPECS = (
        ("buffered_bytes", "u32"),
        ("readers", "u16"),
        ("writers", "u16"),
    )
    MUTABLE = frozenset()


@dataclass
class StatDescription(ObjectDescription):
    """A live introspection object served by an [obs] stat server.

    The object is a snapshot *generator*, not stored bytes: ``size_bytes``
    is the size of the payload built for this query, ``captured`` the
    simulated time it was built, and ``format`` the payload encoding
    (``json`` or ``jsonl``).  Everything is read-only.
    """

    host: str = ""
    format: str = "json"
    size_bytes: int = 0
    captured: float = 0.0

    TAG = DescriptorTag.STAT
    SPECS = (
        ("host", "str"),
        ("format", "str"),
        ("size_bytes", "u64"),
        ("captured", "f64"),
    )
    MUTABLE = frozenset()


@dataclass
class NameBindingDescription(ObjectDescription):
    """A centralized name-server registry entry (baseline, Sec. 2.1)."""

    uid: int = 0
    server_pid: int = 0
    object_kind: str = ""

    TAG = DescriptorTag.NAME_BINDING
    SPECS = (
        ("uid", "u64"),
        ("server_pid", "u32"),
        ("object_kind", "str"),
    )
    MUTABLE = frozenset()
