"""Context directories (paper Sec. 5.6).

"A context directory is logically a file consisting of a sequence of
description records, one for each object in the associated context.  A
client process can open and read a context directory in the same way it
opens a file. ... Writing a description record has the same semantics as
invoking the modification operation on the corresponding object."

The server fabricates the records *on demand* when the directory is opened
(the paper is explicit that servers should organize their data structures
for their own critical operations, not for directory layout); the snapshot
is then served as an ordinary read-only byte stream.

Writing uses record granularity: a WRITE_INSTANCE against a directory
instance carries one encoded description record, and the ``block`` field is
interpreted as a record index hint (the record is matched to its object by
name, so the hint only disambiguates duplicates).  The write is translated
into the server's modify operation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List

from repro.core.descriptors import DescriptorError, ObjectDescription
from repro.kernel.messages import ReplyCode
from repro.kernel.pids import Pid
from repro.vio.instance import MemoryInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.csnh import CSNHServer

Gen = Generator[Any, Any, Any]


def encode_directory(records: List[ObjectDescription]) -> bytes:
    """The byte image of a context directory: concatenated records."""
    return b"".join(record.encode() for record in records)


class ContextDirectoryInstance(MemoryInstance):
    """An open context directory: readable bytes, record-writes modify."""

    def __init__(self, owner: Pid, server: "CSNHServer", context_ref: Any,
                 records: List[ObjectDescription]) -> None:
        super().__init__(owner, data=encode_directory(records), writable=True)
        self.server = server
        self.context_ref = context_ref
        self.record_count = len(records)

    def write_block(self, block: int, data: bytes) -> Gen:
        """One record write == the modification operation (Sec. 5.6)."""
        yield from ()
        try:
            record, consumed = ObjectDescription.decode(bytes(data))
        except DescriptorError:
            return ReplyCode.BAD_ARGS, 0
        if consumed != len(data):
            return ReplyCode.BAD_ARGS, 0
        code = self.server.modify_record(self.context_ref, record)
        if code is not ReplyCode.OK:
            return code, 0
        return ReplyCode.OK, len(data)

    def query_fields(self) -> dict:
        fields = super().query_fields()
        fields["entry_count"] = self.record_count
        return fields


def read_directory_records(server: Pid, instance: int) -> Gen:
    """Client helper: read a directory instance and decode its records."""
    from repro.vio.client import read_all_bytes

    raw = yield from read_all_bytes(server, instance)
    return ObjectDescription.decode_all(raw)
