"""Character string names (paper Sec. 5.1) and the conventions our servers use.

A CSname is "a sequence of zero or more bytes ... usually meaningful
human-readable ASCII strings".  The protocol imposes *no* syntax on names;
interpretation belongs entirely to the server that owns the context.  What
this module provides is therefore two separate things:

1. The protocol-level pieces every participant shares: byte/str coercion and
   the one piece of syntax the *client runtime* knows about -- the context
   prefix, ``[prefix]rest-of-name`` (Sec. 5.8).
2. Helpers for the slash-separated hierarchical convention our file-like
   servers happen to use (``split_components``, ``join``).  The mail server
   deliberately ignores these and parses ``user@host.ARPA`` itself,
   demonstrating the flexibility claim (Sec. 2.2 *Extensibility*).
"""

from __future__ import annotations

PREFIX_OPEN = ord("[")
PREFIX_CLOSE = ord("]")
SEPARATOR = ord("/")

#: Upper bound on CSname length our servers accept; matches the fixed name
#: segment buffer the client runtime ships (see latency.py).
MAX_NAME_BYTES = 256


class BadName(ValueError):
    """A CSname violates a constraint of the context interpreting it."""


def as_name_bytes(name: str | bytes) -> bytes:
    """Coerce a name to its wire form (UTF-8 for str)."""
    if isinstance(name, bytes):
        data = name
    elif isinstance(name, str):
        data = name.encode("utf-8")
    else:
        raise TypeError(f"CSname must be str or bytes, got {type(name).__name__}")
    if len(data) > MAX_NAME_BYTES:
        raise BadName(f"name is {len(data)} bytes; the protocol buffer is {MAX_NAME_BYTES}")
    if 0 in data:
        raise BadName("embedded NUL byte in CSname")
    return data


def as_text(name: bytes) -> str:
    """Best-effort human-readable rendering of a CSname."""
    return name.decode("utf-8", errors="replace")


def has_prefix(name: bytes, index: int = 0) -> bool:
    """True if interpretation at ``index`` starts with a context prefix."""
    return index < len(name) and name[index] == PREFIX_OPEN


def parse_prefix(name: bytes, index: int = 0) -> tuple[bytes, int]:
    """Split ``[prefix]rest`` starting at ``index``.

    Returns ``(prefix, rest_index)`` where ``rest_index`` points at the first
    byte after the closing ``]``.  Raises :class:`BadName` if the syntax is
    violated (missing bracket, empty prefix).
    """
    if not has_prefix(name, index):
        raise BadName(f"no context prefix at index {index} of {as_text(name)!r}")
    close = name.find(PREFIX_CLOSE, index + 1)
    if close < 0:
        raise BadName(f"unterminated context prefix in {as_text(name)!r}")
    prefix = name[index + 1 : close]
    if not prefix:
        raise BadName(f"empty context prefix in {as_text(name)!r}")
    return prefix, close + 1


# ---------------------------------------------------------------------------
# Slash-separated hierarchical convention (file-like servers).
# ---------------------------------------------------------------------------


def next_component(name: bytes, index: int) -> tuple[bytes, int]:
    """The next ``/``-separated component at ``index`` and the index after it.

    Leading separators are skipped, so ``next_component(b"a//b", 1)`` yields
    ``(b"b", 4)``.  At end of name, returns ``(b"", len(name))``.
    """
    n = len(name)
    while index < n and name[index] == SEPARATOR:
        index += 1
    start = index
    while index < n and name[index] != SEPARATOR:
        index += 1
    return name[start:index], index


def split_components(name: str | bytes, index: int = 0) -> list[bytes]:
    """All remaining components of a slash-separated name."""
    data = as_name_bytes(name)
    parts: list[bytes] = []
    while index < len(data):
        component, index = next_component(data, index)
        if component:
            parts.append(component)
    return parts


def join(*components: str | bytes) -> bytes:
    """Join components with ``/`` (no leading separator is added)."""
    return b"/".join(as_name_bytes(c) for c in components)


def is_final_component(name: bytes, index: int) -> bool:
    """True if no further components follow the one ending at ``index``."""
    rest, __ = next_component(name, index)
    return rest == b""


def validate_component(component: bytes) -> bytes:
    """Check a single name component against our servers' convention."""
    if not component:
        raise BadName("empty name component")
    if PREFIX_OPEN in component or PREFIX_CLOSE in component:
        raise BadName(
            f"component {as_text(component)!r} contains a reserved bracket byte"
        )
    if SEPARATOR in component:
        raise BadName(f"component {as_text(component)!r} contains a separator")
    return component
