"""Client side of the query/modify operations (paper Sec. 5.5-5.6).

The system is "in part, a distributed database of information on the
entities it implements.  The name of an entity is just one of its
attributes."  These helpers fetch and update that database uniformly: the
same :func:`query_name` works on a file, a running program, a TCP
connection, or a prefix binding, dispatching on the record's tag -- the
uniformity Sec. 6's single "list directory" command relies on.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.descriptors import ObjectDescription
from repro.core.directory import read_directory_records
from repro.core.resolver import (
    NamingEnvironment,
    expect_ok,
    send_csname_request,
)
from repro.kernel.messages import RequestCode
from repro.kernel.pids import Pid
from repro.vio.client import release_instance

Gen = Generator[Any, Any, Any]


def query_name(env: NamingEnvironment, name: str | bytes) -> Gen:
    """Fetch the typed description record for a named object."""
    reply = yield from send_csname_request(env, RequestCode.QUERY_NAME, name)
    expect_ok("query", name, reply)
    record, __ = ObjectDescription.decode(bytes(reply.segment or b""))
    return record


def modify_name(env: NamingEnvironment, name: str | bytes,
                record: ObjectDescription) -> Gen:
    """The uniform modification operation: overwrite an object's description.

    The server applies only the fields the object's type declares mutable
    and silently ignores the rest, per Sec. 5.5.
    """
    reply = yield from send_csname_request(
        env, RequestCode.MODIFY_NAME, name, record=record.encode())
    expect_ok("modify", name, reply)
    return reply


def read_prefix_records(env: NamingEnvironment) -> Gen:
    """Read the user's prefix table as directory records.

    The empty name names the prefix server's own table context, so the
    request is addressed to the prefix server directly rather than routed
    by the '['-rule.
    """
    from repro.core.context import WellKnownContext
    from repro.core.protocol import make_csname_request
    from repro.kernel.ipc import Delay, Send

    if env.prefix_server is None:
        raise RuntimeError("environment has no prefix server")
    yield Delay(env.latency.stub_pre)
    request = make_csname_request(RequestCode.OPEN_DIRECTORY, b"",
                                  int(WellKnownContext.DEFAULT))
    reply = yield Send(env.prefix_server, request)
    yield Delay(env.latency.stub_post)
    expect_ok("read_prefix_records", "", reply)
    server = Pid(int(reply["server_pid"]))
    instance = int(reply["instance"])
    try:
        records = yield from read_directory_records(server, instance)
    finally:
        yield from release_instance(server, instance)
    return records


def list_directory(env: NamingEnvironment, name: str | bytes,
                   pattern: str | None = None) -> Gen:
    """Open, read, and release a context directory; returns its records.

    This is the client half of E9's preferred design: one open plus
    sequential reads, versus enumerate-names-then-query-each.  ``pattern``
    engages the Sec. 5.6 server-side filtering extension (a shell glob over
    object names).
    """
    fields = {} if pattern is None else {"pattern": pattern}
    reply = yield from send_csname_request(env, RequestCode.OPEN_DIRECTORY,
                                           name, **fields)
    expect_ok("list_directory", name, reply)
    server = Pid(int(reply["server_pid"]))
    instance = int(reply["instance"])
    try:
        records = yield from read_directory_records(server, instance)
    finally:
        yield from release_instance(server, instance)
    return records
