"""An executable semantic model of V naming (paper Sec. 7 future work).

"We are also hoping to develop a concise semantic model of the V-System
naming."  This module is that model, made executable so it can be checked
against the implementation:

**Definitions** (following Sec. 5.2's formal note):

- An *object* is an opaque atom (:class:`AbstractObject`).
- A *context* is a finite set of (name-component, binding) pairs -- here a
  mapping -- where a binding is an object, another context on the same
  server, or a context on another server (:class:`Binding`).
- A *naming system* is a partial function from fully-qualified contexts
  (``(server-pid, context-id)``, Sec. 5.2) to contexts
  (:class:`AbstractNamingSystem`).
- *Interpretation* of a byte string in a context is the least fixed point
  of: consume the next component, apply the context's mapping, and (a) stop
  at an object if the name is exhausted, (b) recurse into a same-server
  context, (c) *re-start* at the target context for a cross-server binding
  -- which is exactly what protocol forwarding implements operationally.

The model deliberately contains no servers, messages, timing, or failure:
it is the denotation the machinery is supposed to compute.  The commutation
theorem -- *simulator resolution = abstract resolution* -- is checked over
randomized system configurations in
``tests/property/test_semantics_commutes.py``.

The model also makes the paper's negative results crisp:

- interpretation is a *many-to-one* relation from (context, name) pairs to
  objects, so an inverse assigning one name per object cannot exist in
  general (Sec. 6's reverse-mapping deficiency);
- a user-level name ``[p]rest`` denotes interpretation of ``rest`` at the
  binding of ``p`` in that user's prefix context -- so two users' identical
  strings legitimately denote different objects (per-user prefix servers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.context import ContextPair
from repro.core.names import next_component, parse_prefix, BadName


@dataclass(frozen=True)
class AbstractObject:
    """An opaque named entity (a file, a mailbox, a program, ...)."""

    kind: str
    ident: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.kind}:{self.ident}>"


#: A binding target: an object, or a (possibly remote) context.
Binding = Union[AbstractObject, ContextPair]


@dataclass(frozen=True)
class Denotation:
    """The meaning of a (context, name) pair: an object or a context."""

    value: Binding

    @property
    def is_context(self) -> bool:
        return isinstance(self.value, ContextPair)


@dataclass(frozen=True)
class Undefined:
    """The name has no meaning in the given context."""

    reason: str


Meaning = Union[Denotation, Undefined]


@dataclass
class AbstractNamingSystem:
    """A partial function from fully-qualified contexts to contexts."""

    contexts: dict[ContextPair, dict[bytes, Binding]] = field(
        default_factory=dict)

    def define_context(self, pair: ContextPair,
                       entries: Optional[dict[bytes, Binding]] = None
                       ) -> dict[bytes, Binding]:
        mapping = self.contexts.setdefault(pair, {})
        if entries:
            mapping.update(entries)
        return mapping

    def bind(self, pair: ContextPair, component: bytes,
             target: Binding) -> None:
        self.contexts.setdefault(pair, {})[component] = target

    # ------------------------------------------------------------- semantics

    def interpret(self, pair: ContextPair, name: bytes,
                  index: int = 0, max_hops: int = 64) -> Meaning:
        """The interpretation function: [[name]]_pair.

        ``max_hops`` bounds cross-server recursion so that cyclic binding
        graphs (which the operational system also permits!) denote
        Undefined rather than diverging.
        """
        if max_hops <= 0:
            return Undefined("cyclic cross-server bindings")
        mapping = self.contexts.get(pair)
        if mapping is None:
            return Undefined(f"no context {pair!r} in the system")
        while True:
            component, index = next_component(name, index)
            if component == b"":
                return Denotation(pair)  # the context itself
            binding = mapping.get(component)
            if binding is None:
                return Undefined(
                    f"{component!r} unbound in {pair!r}")
            remaining, __ = next_component(name, index)
            if isinstance(binding, AbstractObject):
                if remaining != b"":
                    return Undefined(
                        f"{component!r} denotes an object but the name "
                        "continues")
                return Denotation(binding)
            # A context: same-server or remote makes no semantic
            # difference -- that distinction is operational (forwarding).
            if remaining == b"":
                return Denotation(binding)
            return self.interpret(binding, name, index, max_hops - 1)

    def interpret_user_name(self, prefix_context: ContextPair,
                            name: bytes) -> Meaning:
        """User-level names: the '[' rule of Sec. 5.8, denotationally.

        ``[p]rest`` means: interpret ``rest`` at the binding of ``p`` in
        the user's prefix context.  Anything else means: interpret the
        whole name in the user's current context (which callers model by
        passing that context directly to :meth:`interpret`).
        """
        try:
            prefix, rest_index = parse_prefix(name, 0)
        except BadName as err:
            return Undefined(str(err))
        mapping = self.contexts.get(prefix_context)
        if mapping is None:
            return Undefined(f"no prefix context {prefix_context!r}")
        binding = mapping.get(prefix)
        if binding is None:
            return Undefined(f"prefix {prefix!r} undefined")
        if isinstance(binding, AbstractObject):
            return Undefined(f"prefix {prefix!r} bound to an object")
        return self.interpret(binding, name, rest_index)

    # --------------------------------------------------------------- queries

    def objects(self) -> set[AbstractObject]:
        found: set[AbstractObject] = set()
        for mapping in self.contexts.values():
            for binding in mapping.values():
                if isinstance(binding, AbstractObject):
                    found.add(binding)
        return found

    def names_of(self, target: Binding, max_depth: int = 8) -> list[bytes]:
        """All names denoting ``target`` from each context (bounded search).

        The length of this list for a single target is the formal content
        of "the inverse of a many-to-one function" (Sec. 6): any element is
        a correct answer to name_of, and none is canonical.
        """
        results: list[bytes] = []
        for start in self.contexts:
            results.extend(self._names_from(start, target, max_depth,
                                            prefix=b""))
        return results

    def _names_from(self, pair: ContextPair, target: Binding,
                    depth: int, prefix: bytes) -> list[bytes]:
        if depth <= 0:
            return []
        mapping = self.contexts.get(pair, {})
        found = []
        for component, binding in mapping.items():
            name = prefix + b"/" + component if prefix else component
            if binding == target:
                found.append(name)
            if isinstance(binding, ContextPair):
                found.extend(self._names_from(binding, target, depth - 1,
                                              name))
        return found


# ---------------------------------------------------------------------------
# Extraction: the abstract model of a live simulated system.
# ---------------------------------------------------------------------------


def extract_model(fileservers, prefix_servers=()) -> AbstractNamingSystem:
    """Build the denotation of a set of live servers.

    ``fileservers`` is an iterable of :class:`~repro.servers.fileserver.server.VFileServer`
    whose processes have started (``pid`` assigned).  Directory contexts are
    identified by the *server's own* context ids (fabricated through its
    context table, exactly as NAME_TO_CONTEXT would), so the abstract pairs
    are the operational pairs.  Prefix servers contribute their table as a
    context of cross-server bindings.
    """
    from repro.servers.fileserver.storage import (
        DirectoryNode,
        FileNode,
        RemoteLinkEntry,
    )

    system = AbstractNamingSystem()

    def directory_pair(server, node) -> ContextPair:
        return ContextPair(server.pid, server.contexts.id_for(node))

    # First pass: register every directory context on every server.
    for server in fileservers:
        assert server.pid is not None, "server process has not started"
        stack = [server.store.root]
        while stack:
            node = stack.pop()
            system.define_context(directory_pair(server, node))
            for entry in node.entries.values():
                if isinstance(entry, DirectoryNode):
                    stack.append(entry)
        # Well-known ids are additional names for the same contexts.
        for context_id in server.contexts.known_ids():
            ref = server.contexts.resolve(context_id)
            if isinstance(ref, DirectoryNode):
                pair = ContextPair(server.pid, context_id)
                system.contexts[pair] = system.define_context(
                    directory_pair(server, ref))

    # Second pass: bindings.
    for server in fileservers:
        stack = [server.store.root]
        while stack:
            node = stack.pop()
            pair = directory_pair(server, node)
            for component, entry in node.entries.items():
                if isinstance(entry, FileNode):
                    system.bind(pair, component,
                                AbstractObject("file", entry.inode))
                elif isinstance(entry, DirectoryNode):
                    system.bind(pair, component,
                                directory_pair(server, entry))
                    stack.append(entry)
                elif isinstance(entry, RemoteLinkEntry):
                    system.bind(pair, component, entry.pair)

    for prefix_server in prefix_servers:
        assert prefix_server.pid is not None
        pair = ContextPair(prefix_server.pid, 0)
        system.define_context(pair)
        for key, binding in prefix_server.table.bindings.items():
            if binding.fixed is not None:
                system.bind(pair, key, binding.fixed)
            # Generic bindings denote "the current registrant", which is a
            # *time-dependent* denotation; the static model omits them,
            # which is itself a faithful statement about them.
    return system
