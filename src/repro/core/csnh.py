"""The CSNH server base class.

"The term character string name handling server (CSNH server) refers to any
server that performs character string name mapping as specified by the
name-handling protocol, regardless of what else it does." (Sec. 5.1)

:class:`CSNHServer` packages the protocol obligations so a concrete server
only supplies its name space and its operations:

- the receive loop and service registration;
- the standard CSname header handling and the Sec. 5.4 mapping procedure,
  including *forwarding* partially-interpreted names to other servers --
  even for operation codes the server does not understand;
- default implementations of the standard operations (Sec. 5.5-5.7):
  query/modify descriptions, NAME_TO_CONTEXT, context directories, inverse
  mappings, and the V I/O instance operations;
- group-delivery semantics for multicast naming (Sec. 7): mapping faults on
  a group-addressed request are silently discarded, because some *other*
  member presumably implements the name.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.context import ContextIdAllocator, WellKnownContext
from repro.core.descriptors import DescriptorError, ObjectDescription
from repro.core.mapping import (
    ForwardName,
    MappingFault,
    MappingOutcome,
    NameSpace,
    ResolvedObject,
    ResolvedParent,
    map_name,
)
from repro.core.protocol import (
    FIELD_HINT_EPOCH,
    FIELD_HINT_SERVICE,
    FIELD_HINT_SOURCE,
    CSNameHeader,
    is_csname_request,
    make_binding_advice,
    read_csname_header,
    rewrite_for_forward,
)
from repro.kernel.ipc import (
    Annotate,
    Delay,
    Delivery,
    JoinGroup,
    MyPid,
    ProfileEnter,
    ProfileExit,
    Receive,
    Reply,
    SetPid,
)
from repro.kernel.ipc import Forward as ForwardEffect
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import Scope
from repro.vio.instance import Instance, InstanceTable

Gen = Generator[Any, Any, Any]

#: CSname operations resolved against the *parent* context (the final
#: component is the name being created/removed, so it need not be bound).
PARENT_RESOLUTION_OPS = {
    int(RequestCode.CREATE_FILE),
    int(RequestCode.CREATE_CONTEXT),
    int(RequestCode.DELETE_NAME),
    int(RequestCode.DELETE_CONTEXT),
    int(RequestCode.RENAME_OBJECT),
    int(RequestCode.ADD_CONTEXT_NAME),
    int(RequestCode.DELETE_CONTEXT_NAME),
}


class ContextTable:
    """Bidirectional map between context ids and server-internal refs.

    Handles both well-known ids (fixed bindings, Sec. 5.2) and ordinary
    server-assigned ids fabricated on demand by NAME_TO_CONTEXT.
    """

    def __init__(self) -> None:
        self._by_id: dict[int, Any] = {}
        self._by_ref: dict[int, int] = {}  # id(ref) -> context id
        self._refs: dict[int, Any] = {}    # keep refs alive for id() stability
        self._allocator = ContextIdAllocator()

    def register_well_known(self, context_id: int, ref: Any) -> None:
        self._by_id[int(context_id)] = ref

    def resolve(self, context_id: int) -> Optional[Any]:
        return self._by_id.get(int(context_id))

    def id_for(self, ref: Any) -> int:
        """Context id for ``ref``, allocating an ordinary id on first use."""
        key = id(ref)
        existing = self._by_ref.get(key)
        if existing is not None:
            return existing
        context_id = self._allocator.allocate()
        self._by_ref[key] = context_id
        self._by_id[context_id] = ref
        self._refs[key] = ref
        return context_id

    def drop_ref(self, ref: Any) -> None:
        """Invalidate ids for a deleted context."""
        key = id(ref)
        context_id = self._by_ref.pop(key, None)
        self._refs.pop(key, None)
        if context_id is not None:
            self._by_id.pop(context_id, None)
            self._allocator.release(context_id)

    def known_ids(self) -> list[int]:
        return sorted(self._by_id)


class CSNHServer:
    """Base class for every name-handling server in the system."""

    #: Human-readable server kind (tracing and inverse mapping).
    server_name: str = "csnh"
    #: Kernel service id to register under (None = unregistered).
    service_id: Optional[int] = None
    service_scope: Scope = Scope.BOTH
    #: Attribution-frame label for the per-request CPU charge (profiling,
    #: see repro.obs.profile).  The prefix server sets "prefix_lookup" so
    #: its parse/lookup cost shows as its own CSNH phase; None leaves the
    #: charge on the process/service frames.
    profile_phase: Optional[str] = None

    def __init__(self) -> None:
        self.pid: Optional[Pid] = None
        self.instances = InstanceTable()
        self.contexts = ContextTable()
        self._csname_ops: dict[int, Any] = {}
        self._request_ops: dict[int, Any] = {}
        #: Per-transaction binding advice, stashed when the mapping lands on
        #: this server and attached to the reply by the reply glue below.
        self._advice: dict[int, dict] = {}
        self._register_standard_ops()

    # ------------------------------------------------------------- op tables

    def _register_standard_ops(self) -> None:
        self.register_csname_op(RequestCode.QUERY_NAME, self.op_query_name)
        self.register_csname_op(RequestCode.MODIFY_NAME, self.op_modify_name)
        self.register_csname_op(RequestCode.NAME_TO_CONTEXT, self.op_name_to_context)
        self.register_csname_op(RequestCode.OPEN_DIRECTORY, self.op_open_directory)
        self.register_request_op(RequestCode.CONTEXT_TO_NAME, self.op_context_to_name)
        self.register_request_op(RequestCode.INSTANCE_TO_NAME, self.op_instance_to_name)
        self.register_request_op(RequestCode.READ_INSTANCE, self.op_read_instance)
        self.register_request_op(RequestCode.WRITE_INSTANCE, self.op_write_instance)
        self.register_request_op(RequestCode.QUERY_INSTANCE, self.op_query_instance)
        self.register_request_op(RequestCode.RELEASE_INSTANCE, self.op_release_instance)

    def register_csname_op(self, code: int, handler) -> None:
        """Install a handler(dv, header, resolution) for a CSname op."""
        self._csname_ops[int(code)] = handler

    def register_request_op(self, code: int, handler) -> None:
        """Install a handler(dv) for a non-CSname request."""
        self._request_ops[int(code)] = handler

    # ------------------------------------------------------------------ hooks

    def namespace(self) -> Optional[NameSpace]:
        """The server's name space, if it uses the generic mapping procedure."""
        return None

    def on_start(self) -> Gen:
        """Extra startup effects (runs after registration)."""
        yield from ()

    def per_request_delay(self) -> float:
        """CPU time charged per incoming request (calibration hook)."""
        return 0.0

    def group_ids(self) -> list[int]:
        """Process groups to join at startup (multicast naming, Sec. 7)."""
        return []

    def describe(self, resolution: ResolvedObject) -> Optional[ObjectDescription]:
        """Build the description record for a resolved object (Sec. 5.5)."""
        return None

    def apply_description(self, resolution: ResolvedObject,
                          record: ObjectDescription) -> ReplyCode:
        """Apply a modification record to a resolved object (Sec. 5.5)."""
        return ReplyCode.ILLEGAL_REQUEST

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        """Fabricate the context directory records on demand (Sec. 5.6)."""
        return []

    def modify_record(self, context_ref: Any,
                      record: ObjectDescription) -> ReplyCode:
        """Apply a record written into a context directory (Sec. 5.6)."""
        return ReplyCode.ILLEGAL_REQUEST

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        """Inverse mapping: context id -> CSname (Sec. 5.7, best effort)."""
        return None

    def name_of_instance(self, instance_id: int) -> Optional[bytes]:
        """Inverse mapping: instance id -> CSname (Sec. 5.7, best effort)."""
        return None

    def client_died(self, pid: Pid) -> None:
        """Called when a NONEXISTENT client is noticed (resource reclaim)."""
        self.instances.release_owned_by(pid)

    # ------------------------------------------------------------------ body

    def body(self) -> Gen:
        """The server process: register, then serve forever."""
        self.pid = yield MyPid()
        if self.service_id is not None:
            yield SetPid(int(self.service_id), self.service_scope)
        for group_id in self.group_ids():
            yield JoinGroup(group_id)
        yield from self.on_start()
        while True:
            delivery = yield Receive()
            yield from self.dispatch(delivery)

    def dispatch(self, delivery: Delivery) -> Gen:
        message = delivery.message
        cost = self.per_request_delay()
        if cost > 0:
            if self.profile_phase is not None:
                yield ProfileEnter(self.profile_phase)
                yield Delay(cost)
                yield ProfileExit()
            else:
                yield Delay(cost)
        if is_csname_request(message):
            yield from self.handle_csname(delivery)
            return
        handler = self._request_ops.get(message.code)
        if handler is None:
            yield from self.reply_error(delivery, ReplyCode.ILLEGAL_REQUEST)
            return
        yield from handler(delivery)

    # ---------------------------------------------------------------- CSnames

    def map_request(self, delivery: Delivery,
                    header: CSNameHeader) -> Gen:
        """Resolve the request's name; returns a MappingOutcome.

        A generator so subclasses can yield effects while mapping (the
        prefix server's GetPid for generic bindings).  The default runs the
        Sec. 5.4 procedure over :meth:`namespace`.
        """
        want_parent = delivery.message.code in PARENT_RESOLUTION_OPS
        return (yield from self.run_mapping(delivery, header,
                                            want_parent=want_parent))

    def run_mapping(self, delivery: Delivery, header: CSNameHeader,
                    want_parent: bool = False) -> Gen:
        """Run the Sec. 5.4 walk over :meth:`namespace`, annotating each step.

        Subclasses overriding :meth:`map_request` for custom ``want_parent``
        rules should delegate here so their hop spans still record the walk.
        """
        space = self.namespace()
        if space is None:
            return MappingFault(ReplyCode.ILLEGAL_REQUEST,
                                f"{self.server_name} has no name space")
        steps: list[str] = []
        outcome = map_name(
            space, header.context_id, header.name, header.name_index,
            want_parent=want_parent,
            observer=lambda piece, kind: steps.append(
                f"{piece.decode(errors='replace')}={kind}"))
        for step in steps:
            # Zero-cost: records the component-by-component walk on this
            # request's hop span (ignored when the request is untraced).
            yield Annotate(delivery.txn_id, {"walk": step}, append=True)
        return outcome

    def handle_csname(self, delivery: Delivery) -> Gen:
        message = delivery.message
        try:
            header = read_csname_header(message)
        except (KeyError, ValueError):
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        outcome: MappingOutcome = yield from self.map_request(delivery, header)
        yield Annotate(delivery.txn_id,
                       {"mapping": _mapping_step(self, header, outcome)},
                       append=True)
        if isinstance(outcome, ForwardName):
            yield from self.forward_request(delivery, outcome)
            return
        if isinstance(outcome, MappingFault):
            yield from self.reply_error(delivery, outcome.code,
                                        detail=outcome.detail,
                                        **(outcome.extra_fields or {}))
            return
        # The mapping landed here: remember the binding the client could
        # have used to skip every upstream hop -- our pid plus the header as
        # it arrived at this server.  The reply glue attaches it to an OK
        # reply (repro.core.namecache learns from it); advice fields ride in
        # the short-message variant part, so this costs nothing on the wire.
        assert self.pid is not None
        self._advice[delivery.txn_id] = make_binding_advice(
            self.pid, header.context_id, header.name_index,
            hint_service=message.get(FIELD_HINT_SERVICE),
            hint_epoch=message.get(FIELD_HINT_EPOCH),
            hint_source=message.get(FIELD_HINT_SOURCE))
        handler = self._csname_ops.get(message.code)
        if handler is None:
            # We own the name but not the operation: the request reached the
            # right server, which genuinely does not implement the op.
            yield from self.reply_error(delivery, ReplyCode.ILLEGAL_REQUEST)
            return
        yield from handler(delivery, header, outcome)

    def forward_request(self, delivery: Delivery, outcome: ForwardName) -> Gen:
        """Sec. 5.4: rewrite the standard header and forward."""
        if outcome.pair.server == self.pid:
            # A link back into this server: continue interpreting here
            # rather than sending ourselves a message.
            header = read_csname_header(delivery.message)
            rewritten = rewrite_for_forward(delivery.message,
                                            outcome.pair.context_id,
                                            outcome.index)
            if outcome.extra_fields:
                rewritten.fields.update(outcome.extra_fields)
            patched = Delivery(message=rewritten, sender=delivery.sender,
                               txn_id=delivery.txn_id,
                               forwarder=delivery.forwarder,
                               via_group=delivery.via_group)
            yield from self.handle_csname(patched)
            return
        rewritten = rewrite_for_forward(delivery.message,
                                        outcome.pair.context_id, outcome.index)
        if outcome.extra_fields:
            rewritten.fields.update(outcome.extra_fields)
        yield ForwardEffect(delivery, outcome.pair.server, rewritten)

    # ------------------------------------------------------------- reply glue

    def reply(self, delivery: Delivery, message: Message) -> Gen:
        advice = self._advice.pop(delivery.txn_id, None)
        if advice is not None and message.ok:
            for key, value in advice.items():
                message.fields.setdefault(key, value)
        yield Reply(delivery.sender, message)

    def reply_ok(self, delivery: Delivery, segment: bytes | None = None,
                 **fields: Any) -> Gen:
        yield from self.reply(
            delivery, Message.reply(ReplyCode.OK, segment=segment, **fields))

    def reply_error(self, delivery: Delivery, code: ReplyCode,
                    **fields: Any) -> Gen:
        """Error reply -- silently dropped for group-addressed requests.

        With multicast naming, "each server would compare the specified name
        with its own name" and non-owners simply discard (Sec. 2.2): exactly
        one member is expected to answer.
        """
        self._advice.pop(delivery.txn_id, None)
        if delivery.via_group:
            yield from ()
            return
        yield Reply(delivery.sender, Message.reply(code, **fields))

    # ----------------------------------------------------- standard CSname ops

    def op_query_name(self, delivery: Delivery, header: CSNameHeader,
                      resolution: MappingOutcome) -> Gen:
        record = self.describe(resolution)  # type: ignore[arg-type]
        if record is None:
            yield from self.reply_error(delivery, ReplyCode.ILLEGAL_REQUEST)
            return
        yield from self.reply_ok(delivery, segment=record.encode())

    def op_modify_name(self, delivery: Delivery, header: CSNameHeader,
                       resolution: MappingOutcome) -> Gen:
        # The segment holds the name (standard header); the modification
        # record rides in the variant part under the "record" field.
        raw = delivery.message.get("record")
        if raw is None:
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        try:
            record, __ = ObjectDescription.decode(bytes(raw))
        except DescriptorError:
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        code = self.apply_description(resolution, record)  # type: ignore[arg-type]
        if code is ReplyCode.OK:
            yield from self.reply_ok(delivery)
        else:
            yield from self.reply_error(delivery, code)

    def op_name_to_context(self, delivery: Delivery, header: CSNameHeader,
                           resolution: MappingOutcome) -> Gen:
        if not isinstance(resolution, ResolvedObject) or not resolution.is_context:
            yield from self.reply_error(delivery, ReplyCode.NOT_A_CONTEXT)
            return
        context_id = self.contexts.id_for(resolution.ref)
        assert self.pid is not None
        yield from self.reply_ok(delivery, server_pid=self.pid.value,
                                 context_id=context_id)

    def op_open_directory(self, delivery: Delivery, header: CSNameHeader,
                          resolution: MappingOutcome) -> Gen:
        """Open a context directory as a file (Sec. 5.6).

        Supports the extension the paper proposes at the end of Sec. 5.6:
        an optional ``pattern`` field (shell glob) "would cause the server
        to only include objects that match the given pattern in the
        returned context directory" -- trading server-side filtering for
        collation/transmission of unwanted records.
        """
        from repro.core.directory import ContextDirectoryInstance

        if not isinstance(resolution, ResolvedObject) or not resolution.is_context:
            yield from self.reply_error(delivery, ReplyCode.NOT_A_CONTEXT)
            return
        records = self.directory_records(resolution.ref)
        pattern = delivery.message.get("pattern")
        if pattern is not None:
            import fnmatch

            records = [record for record in records
                       if fnmatch.fnmatchcase(record.name, str(pattern))]
        instance = ContextDirectoryInstance(
            owner=delivery.sender, server=self, context_ref=resolution.ref,
            records=records)
        instance_id = self.instances.insert(instance)
        assert self.pid is not None
        yield from self.reply_ok(delivery, instance=instance_id,
                                 block_size=instance.block_size,
                                 entry_count=len(records),
                                 server_pid=self.pid.value)

    # -------------------------------------------------------- inverse mapping

    def op_context_to_name(self, delivery: Delivery) -> Gen:
        context_id = int(delivery.message.get("context_id", -1))
        name = self.name_of_context(context_id)
        if name is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        yield from self.reply_ok(delivery, segment=name)

    def op_instance_to_name(self, delivery: Delivery) -> Gen:
        instance_id = int(delivery.message.get("instance", -1))
        name = self.name_of_instance(instance_id)
        if name is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        yield from self.reply_ok(delivery, segment=name)

    # ---------------------------------------------------------- instance ops

    def _instance_for(self, delivery: Delivery) -> Optional[Instance]:
        instance_id = int(delivery.message.get("instance", -1))
        return self.instances.get(instance_id)

    def op_read_instance(self, delivery: Delivery) -> Gen:
        instance = self._instance_for(delivery)
        if instance is None:
            yield from self.reply_error(delivery, ReplyCode.BAD_INSTANCE)
            return
        block = int(delivery.message.get("block", 0))
        code, data = yield from instance.read_block(block)
        if code is ReplyCode.OK:
            yield from self.reply_ok(delivery, segment=data, bytes=len(data))
        else:
            yield from self.reply_error(delivery, code)

    def op_write_instance(self, delivery: Delivery) -> Gen:
        instance = self._instance_for(delivery)
        if instance is None:
            yield from self.reply_error(delivery, ReplyCode.BAD_INSTANCE)
            return
        block = int(delivery.message.get("block", 0))
        data = bytes(delivery.message.segment or b"")
        code, written = yield from instance.write_block(block, data)
        if code is ReplyCode.OK:
            yield from self.reply_ok(delivery, bytes=written)
        else:
            yield from self.reply_error(delivery, code)

    def op_query_instance(self, delivery: Delivery) -> Gen:
        instance = self._instance_for(delivery)
        if instance is None:
            yield from self.reply_error(delivery, ReplyCode.BAD_INSTANCE)
            return
        yield from self.reply_ok(delivery, **instance.query_fields())

    def op_release_instance(self, delivery: Delivery) -> Gen:
        instance = self._instance_for(delivery)
        if instance is None:
            yield from self.reply_error(delivery, ReplyCode.BAD_INSTANCE)
            return
        yield from instance.release()
        self.instances.release(instance.instance_id or 0)
        yield from self.reply_ok(delivery)


def _mapping_step(server: CSNHServer, header: CSNameHeader,
                  outcome: MappingOutcome) -> dict:
    """Summarize one server's share of a name's interpretation (for spans).

    ``consumed`` counts the name bytes this server interpreted -- on a
    forwarded resolution each hop span carries its own share, so the trace
    shows exactly how the name was split across servers (Sec. 5.4).
    """
    step: dict[str, Any] = {
        "server": server.server_name,
        "context_id": header.context_id,
        "name_index": header.name_index,
    }
    if isinstance(outcome, ForwardName):
        step["outcome"] = "forward"
        step["consumed"] = outcome.index - header.name_index
    elif isinstance(outcome, MappingFault):
        step["outcome"] = "fault"
        step["fault"] = outcome.code.name
    elif isinstance(outcome, ResolvedParent):
        step["outcome"] = "parent"
        step["consumed"] = outcome.index - header.name_index
    else:
        step["outcome"] = "resolved"
        step["consumed"] = outcome.index - header.name_index
    return step
