"""Client-side name-binding cache with stale-hint recovery (E12).

The E4 table prices the uniform-access design: every request routed through
the context prefix server pays a fixed ~3.93 ms over a direct send (5.14 vs
1.21 ms local, 7.69 vs 3.70 ms remote), because the prefix server parses the
``[prefix]`` and *forwards* on every use.  Sec. 5 of the paper observes the
escape hatch: a client holding a ``(server-pid, context-id)`` binding can
address the context server directly and skip the prefix hop entirely.

This module is that escape hatch, made safe.  A :class:`NameCache` layered
into :func:`repro.core.resolver.send_csname_request` keeps three tables:

- **name hints**: fully-resolved CSname -> ``(server-pid, context-id,
  name-index)``, learned from the *binding advice* fields every CSNH server
  attaches to its OK replies (see :mod:`repro.core.protocol`).  A hint
  replays the exact request the final server saw after all forwarding, so a
  repeated multi-hop resolution collapses to one direct transaction.
- **prefix bindings**: ``prefix -> ContextPair`` (fixed form) or ``prefix ->
  (service-id, context-id)`` (generic form), learned whenever the advice
  shows the prefix alone was consumed upstream.  A prefix binding serves
  *any* name under the prefix, not just names seen before.
- **service pids**: GetPid results for generic bindings, with a bounded TTL
  in *simulated* time -- the client-side mirror of the prefix server's
  "GetPid each time the name is used" rule, cheap enough to refresh because
  a kernel GetPid is not a server transaction.

Correctness never depends on cache freshness -- the protocol for using a
hint is *optimistic send, validate by reply code*:

1. route the request directly using the cached binding;
2. if the reply is in :data:`STALE_REPLY_CODES` (invalid context, dead pid,
   crashed host, missing name...), invalidate the entry and transparently
   re-send via full prefix-server resolution;
3. learn the fresh binding from the fallback's reply.

Two proactive channels keep common staleness off the recovery path: the
prefix server notifies attached caches when a prefix is deleted or rebound
(:meth:`repro.core.prefix_server.ContextPrefixServer.attach_cache`), and the
kernel's service registry notifies when a registration's pid dies
(:meth:`NameCache.note_pid_removed`, wired through
``Domain.on_pid_removed``), so dead generic bindings are dropped instead of
timing out.  Both notices model V's kernel-resident per-workstation state:
the prefix server and its clients share a machine, so the notification is a
shared-memory write, charged at zero simulated cost.

:class:`BindingCache` is the reusable bounded-LRU/TTL substrate; the
centralized baseline's deliberately-stale client cache
(:mod:`repro.baseline.client`) is the no-TTL configuration of the same
class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional, Union

from repro.core.context import ContextPair
from repro.core.names import BadName, has_prefix, parse_prefix
from repro.core.protocol import read_binding_advice, read_binding_provenance
from repro.kernel.ipc import GetPid, Now
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import Scope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

Gen = Generator[Any, Any, Any]

#: Reply codes that mean "the cached binding may be stale": the addressed
#: process is gone (dead pid / crashed host), the context id is no longer
#: valid there, or the name does not resolve where the hint pointed.  A
#: hint-routed request answered with one of these is retried through full
#: prefix-server resolution before the error is surfaced, so a genuinely
#: missing name still errors -- after revalidation -- exactly as it would
#: have cold.
STALE_REPLY_CODES = frozenset({
    ReplyCode.INVALID_CONTEXT,
    ReplyCode.NONEXISTENT_PROCESS,
    ReplyCode.TIMEOUT,
    ReplyCode.NO_SERVER,
    ReplyCode.RETRY,
    ReplyCode.NOT_FOUND,
    ReplyCode.NOT_A_CONTEXT,
})

_STALE_CODE_INTS = frozenset(int(code) for code in STALE_REPLY_CODES)

#: CSname operations that act on the prefix *table itself* and must always
#: reach the prefix server, never a cached target.
CACHE_BYPASS_OPS = frozenset({
    int(RequestCode.ADD_CONTEXT_NAME),
    int(RequestCode.DELETE_CONTEXT_NAME),
})


class BindingCache:
    """A bounded LRU map with an optional TTL, counting its own traffic.

    ``ttl=None`` is the deliberately-stale mode: entries never expire and
    are only removed by explicit invalidation or LRU pressure -- exactly the
    consistency hazard the paper ascribes to client-side caching in the
    centralized model (Sec. 2.2), kept available as a configuration for the
    E8 experiments.  Timestamps are simulated seconds supplied by the
    caller, so expiry is deterministic.
    """

    def __init__(self, max_entries: int = 512,
                 ttl: Optional[float] = None) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive: {max_entries}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None: {ttl}")
        self.max_entries = max_entries
        self.ttl = ttl
        #: key -> (value, install stamp, mutation epoch, source pid).  The
        #: provenance pair defaults to (0, 0) -- unknown -- and is carried
        #: so the coherence auditor (repro.obs.audit) can compare a cached
        #: entry against the authority's stamp instead of guessing from
        #: clocks; ``get``/``put`` callers that ignore it are unaffected.
        self._entries: dict[Any, tuple[Any, float, int, int]] = {}
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def get(self, key: Any, now: Optional[float] = None) -> Any:
        """The cached value, or None (expired entries are dropped).

        TTL-bearing caches require the caller's clock: a defaulted ``now``
        would silently make every entry look fresh forever, which is how a
        TTL cache degenerates into the deliberately-stale one.
        """
        now = self._require_clock(now)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        value, stamp = entry[0], entry[1]
        # Expiry is *inclusive*: an entry read exactly at ``stamp + ttl`` is
        # already stale.  Replicated prefix serving (repro.core.shard) leases
        # bindings with this same boundary, and coherence depends on every
        # party agreeing on the expiry instant -- an entry served at the
        # instant its lease lapses is a resolution from an expired binding.
        if self.ttl is not None and now - stamp >= self.ttl:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        # LRU touch: re-insertion moves the key to the young end.
        del self._entries[key]
        self._entries[key] = entry
        self.hits += 1
        return value

    def _require_clock(self, now: Optional[float]) -> float:
        if now is None:
            if self.ttl is not None:
                raise ValueError(
                    "this BindingCache has a TTL; pass the current simulated "
                    "time explicitly (now=...) so expiry can work")
            return 0.0
        return now

    def put(self, key: Any, value: Any, now: Optional[float] = None, *,
            epoch: int = 0, source: int = 0) -> None:
        now = self._require_clock(now)
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.max_entries:
            del self._entries[next(iter(self._entries))]
            self.evictions += 1
        self._entries[key] = (value, now, int(epoch), int(source))

    def invalidate(self, key: Any) -> bool:
        return self._entries.pop(key, None) is not None

    def invalidate_where(self, predicate: Callable[[Any, Any], bool]) -> int:
        """Drop every entry where ``predicate(key, value)``; returns count."""
        doomed = [key for key, entry in self._entries.items()
                  if predicate(key, entry[0])]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()

    def items(self) -> list[tuple[Any, Any]]:
        return [(key, entry[0]) for key, entry in self._entries.items()]

    # ---------------------------------------------------------- provenance
    # Raw accessors for the coherence auditor: no hit/miss/expiry counting,
    # no LRU touch, possibly-expired entries included -- auditing the cache
    # must not perturb it.

    def meta(self, key: Any) -> Optional[tuple[Any, float, int, int]]:
        """The raw entry for ``key``: (value, stamp, epoch, source)."""
        return self._entries.get(key)

    def entries_meta(self) -> list[tuple[Any, Any, float, int, int]]:
        """Every raw entry as (key, value, stamp, epoch, source)."""
        return [(key, entry[0], entry[1], entry[2], entry[3])
                for key, entry in self._entries.items()]


@dataclass(frozen=True)
class GenericBinding:
    """A cached generic prefix: resolve the service pid at time of use."""

    service: int
    context_id: int


PrefixEntry = Union[ContextPair, GenericBinding]


#: Sentinel a cache's ``route()`` may return instead of a CachedRoute: the
#: name is *negatively* cached (a recent authoritative NOT_FOUND whose TTL
#: has not lapsed).  ``send_csname_request`` answers such a request locally
#: with a synthetic NOT_FOUND reply instead of re-asking the servers --
#: the classic resolver defence against hot missing names.
NEGATIVE_ROUTE = object()


@dataclass(frozen=True)
class CachedRoute:
    """Where a cached binding says a request can be sent directly."""

    dst: Pid
    context_id: int
    name_index: int
    #: Which table produced the route: "hint", "prefix", or "generic".
    source: str
    prefix: Optional[bytes] = None
    service: Optional[int] = None


@dataclass
class CacheStats:
    """Local counters (always maintained, registry or not)."""

    hits: int = 0
    misses: int = 0
    fallbacks: int = 0
    invalidations: int = 0
    hits_by_source: dict = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served warm *and* validated by the reply.

        A hit that turned out stale (and fell back to full resolution) is
        not a useful hit, so fallbacks are subtracted from the numerator.
        """
        if self.lookups == 0:
            return 0.0
        return max(0, self.hits - self.fallbacks) / self.lookups


class NameCache:
    """The per-workstation client-side binding cache."""

    def __init__(self, getpid_ttl: float = 5.0, max_hints: int = 512,
                 max_services: int = 64,
                 registry: Optional["MetricsRegistry"] = None) -> None:
        #: name -> (ContextPair, name_index); no TTL, bounded LRU.
        self._hints = BindingCache(max_entries=max_hints, ttl=None)
        #: prefix -> ContextPair | GenericBinding.
        self._prefixes: dict[bytes, PrefixEntry] = {}
        #: service id -> Pid, TTL-bounded in simulated seconds.
        self._services = BindingCache(max_entries=max_services, ttl=getpid_ttl)
        self.stats = CacheStats()
        self.registry = registry

    # -------------------------------------------------------------- counters

    def _hit(self, source: str) -> None:
        self.stats.hits += 1
        by = self.stats.hits_by_source
        by[source] = by.get(source, 0) + 1
        if self.registry is not None:
            self.registry.counter("namecache.hits", source=source).incr()

    def _miss(self) -> None:
        self.stats.misses += 1
        if self.registry is not None:
            self.registry.counter("namecache.misses").incr()

    def _invalidated(self, reason: str, count: int = 1) -> None:
        if count <= 0:
            return
        self.stats.invalidations += count
        if self.registry is not None:
            self.registry.counter("namecache.invalidations",
                                  reason=reason).incr(count)

    # --------------------------------------------------------------- routing

    def should_route(self, data: bytes, code: int) -> bool:
        """Can this request even be served from the cache?

        Only ``[prefix]`` names are cacheable -- a relative name's meaning
        depends on the session's current context, which already *is* a
        direct binding.  Prefix-table operations always go to the prefix
        server.
        """
        return int(code) not in CACHE_BYPASS_OPS and has_prefix(data)

    def route(self, data: bytes) -> Gen:
        """Find a direct route for ``data``; a generator over kernel effects.

        Yields ``Now`` (and possibly ``GetPid``) for generic bindings, so it
        must be driven with ``yield from`` by the client process.  Returns a
        :class:`CachedRoute` or None (a miss, counted).
        """
        hint = self._hints.get(data)
        if hint is not None:
            pair, index = hint
            self._hit("hint")
            return CachedRoute(pair.server, pair.context_id, index, "hint")
        try:
            prefix, rest_index = parse_prefix(data)
        except BadName:
            # Malformed prefix: let the full path produce the proper error.
            return None
        entry = self._prefixes.get(prefix)
        if entry is None:
            self._miss()
            return None
        if isinstance(entry, GenericBinding):
            now = yield Now()
            pid = self._services.get(entry.service, now)
            if pid is None:
                # The bounded-TTL refresh: a kernel GetPid, not a server
                # transaction -- the binding keeps tracking restarts.
                pid = yield GetPid(entry.service, Scope.ANY)
                if pid is None:
                    self._miss()
                    return None
                self._services.put(entry.service, pid, now)
            self._hit("generic")
            return CachedRoute(pid, entry.context_id, rest_index, "generic",
                               prefix=prefix, service=entry.service)
        self._hit("prefix")
        return CachedRoute(entry.server, entry.context_id, rest_index,
                           "prefix", prefix=prefix)

    # -------------------------------------------------------------- learning

    def learn(self, data: bytes, reply: Message,
              now: Optional[float] = None) -> None:
        """Absorb the binding advice of a full resolution's OK reply.

        ``now`` (simulated seconds) is required when the advice carries a
        generic service binding, because the service-pid table is TTL-bound.
        """
        if not reply.ok:
            return
        advice = read_binding_advice(reply)
        if advice is None:
            return
        pair, index, service = advice
        provenance = read_binding_provenance(reply) or (0, 0)
        self._hints.put(data, (pair, index),
                        epoch=provenance[0], source=provenance[1])
        try:
            prefix, rest_index = parse_prefix(data)
        except BadName:
            return
        if index != rest_index:
            # The final server consumed more than the prefix (multi-hop
            # forwarding): the name hint stands, but we cannot tell what
            # the *prefix alone* binds to.
            return
        if service is not None:
            self._prefixes[prefix] = GenericBinding(int(service),
                                                    pair.context_id)
            self._services.put(int(service), pair.server, now)
        else:
            self._prefixes[prefix] = ContextPair(pair.server, pair.context_id)

    # ---------------------------------------------------------- invalidation

    def is_stale_reply(self, reply: Message) -> bool:
        return reply.code in _STALE_CODE_INTS

    def invalidate_route(self, data: bytes, route: CachedRoute,
                         code: int) -> None:
        """A hint-routed request came back stale: drop what produced it."""
        self.stats.fallbacks += 1
        if self.registry is not None:
            self.registry.counter("namecache.fallbacks").incr()
        dropped = 0
        if route.source == "generic" and route.service is not None:
            # Keep the generic prefix knowledge; only the resolved pid died.
            dropped += 1 if self._services.invalidate(route.service) else 0
        else:
            dropped += 1 if self._hints.invalidate(data) else 0
            prefix = route.prefix
            if prefix is None:
                try:
                    prefix, __ = parse_prefix(data)
                except BadName:
                    prefix = None
            if prefix is not None:
                entry = self._prefixes.get(prefix)
                # A fixed binding that routed us to the refusing server is
                # guilty by association; sibling hints derived from it too.
                if isinstance(entry, ContextPair) and entry.server == route.dst:
                    dropped += self._drop_prefix(prefix)
        self._invalidated("stale-reply", max(dropped, 1))

    def _drop_prefix(self, prefix: bytes) -> int:
        dropped = 1 if self._prefixes.pop(prefix, None) is not None else 0
        needle = b"[" + prefix + b"]"
        dropped += self._hints.invalidate_where(
            lambda key, __: key.startswith(needle))
        return dropped

    def invalidate_prefix(self, prefix: bytes, reason: str = "notice") -> int:
        """Proactive notice: a prefix was deleted or rebound upstream."""
        dropped = self._drop_prefix(bytes(prefix))
        self._invalidated(reason, dropped)
        return dropped

    def note_pid_removed(self, pid: Pid) -> None:
        """Registration-removal notice: drop dead generic bindings.

        Wired through ``Domain.on_pid_removed`` so a server's exit or a host
        crash clears the cached GetPid result immediately -- the next use
        re-resolves instead of sending to a dead pid and waiting out the
        probe protocol.
        """
        dropped = self._services.invalidate_where(
            lambda __, value: value == pid)
        self._invalidated("registration-removed", dropped)

    def clear(self) -> None:
        self._hints.clear()
        self._prefixes.clear()
        self._services.clear()

    # ------------------------------------------------------------ inspection

    def prefix_entry(self, prefix: str | bytes) -> Optional[PrefixEntry]:
        raw = prefix.encode() if isinstance(prefix, str) else bytes(prefix)
        return self._prefixes.get(raw)

    def hint_for(self, name: str | bytes) -> Optional[tuple[ContextPair, int]]:
        raw = name.encode() if isinstance(name, str) else bytes(name)
        entry = self._hints._entries.get(raw)
        return entry[0] if entry is not None else None

    def service_pid(self, service: int,
                    now: Optional[float] = None) -> Optional[Pid]:
        return self._services.get(service, now)

    def footprint(self) -> dict:
        return {
            "hints": len(self._hints),
            "prefixes": len(self._prefixes),
            "services": len(self._services),
        }

    def snapshot(self) -> dict:
        """JSON-ready cache contents and counters.

        Served live as ``[obs]/hosts/<host>/namecache``; building it costs
        zero simulated time (plain memory reads by the stat server).
        """
        hints = [
            {"name": key.decode("utf-8", errors="replace"),
             "server_pid": pair.server.value,
             "context_id": pair.context_id,
             "name_index": index}
            for key, (pair, index) in self._hints.items()
        ]
        prefixes = []
        for prefix, entry in self._prefixes.items():
            record = {"prefix": prefix.decode("utf-8", errors="replace")}
            if isinstance(entry, GenericBinding):
                record.update(generic=True, service=entry.service,
                              context_id=entry.context_id)
            else:
                record.update(generic=False, server_pid=entry.server.value,
                              context_id=entry.context_id)
            prefixes.append(record)
        services = [
            {"service": service, "pid": pid.value}
            for service, pid in self._services.items()
        ]
        return {
            "footprint": self.footprint(),
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "fallbacks": self.stats.fallbacks,
                "invalidations": self.stats.invalidations,
                "hit_rate": self.stats.hit_rate,
                "hits_by_source": dict(self.stats.hits_by_source),
            },
            "hints": hints,
            "prefixes": prefixes,
            "services": services,
        }
