"""Multicast name resolution (paper Sec. 7 / Sec. 2.2).

"A near-term project is to replace the low-level service naming using GetPid
and SetPid with a mechanism based on multicast Send.  Using this mechanism,
a single context could be implemented transparently by a group of servers
working in cooperation."

We implement that future-work design so E10 can measure it against the
broadcast GetPid baseline:

- a *group context* is a process group id agreed to name a context;
- member servers join the group (``CSNHServer.group_ids``) and serve CSname
  requests normally, except that mapping faults on group-addressed requests
  are silently discarded -- some other member implements the name;
- a client multicasts the CSname request with ``GroupSend`` and takes the
  first (only) reply, with no per-use GetPid at all.

The efficiency comparison the paper anticipates: broadcast GetPid interrupts
*every* host on the wire and still needs a directed Send afterwards, while a
group-addressed request reaches exactly the member hosts and carries the
operation itself.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.context import ContextPair, WellKnownContext
from repro.core.names import as_name_bytes
from repro.core.protocol import make_csname_request
from repro.core.resolver import NamingEnvironment, expect_ok
from repro.kernel.ipc import Delay, GroupSend
from repro.kernel.messages import Message, RequestCode
from repro.kernel.pids import Pid

Gen = Generator[Any, Any, Any]

#: Group ids below this are reserved for kernel use; naming groups start here.
NAMING_GROUP_BASE = 0x1000


def group_context(index: int) -> int:
    """Allocate a well-known naming group id (static agreement, like ports)."""
    return NAMING_GROUP_BASE + index


def group_csname_request(env: NamingEnvironment, group_id: int, code: int,
                         name: str | bytes,
                         context_id: int = int(WellKnownContext.DEFAULT),
                         **variant_fields: Any) -> Gen:
    """Send one CSname request to a group context; returns the first reply.

    The stub overhead is charged exactly as for the unicast path, so E10's
    comparison isolates the resolution mechanism.
    """
    data = as_name_bytes(name)
    yield Delay(env.latency.stub_pre)
    message = make_csname_request(code, data, context_id)
    message.fields.update(variant_fields)
    reply = yield GroupSend(group_id, message)
    yield Delay(env.latency.stub_post)
    return reply


def group_name_to_context(env: NamingEnvironment, group_id: int,
                          name: str | bytes) -> Gen:
    """Resolve a name in a group context to the member that implements it.

    This subsumes GetPid: one multicast yields the concrete
    (server-pid, context-id) to use for subsequent direct operations.
    """
    reply = yield from group_csname_request(
        env, group_id, RequestCode.NAME_TO_CONTEXT, name)
    expect_ok("group_name_to_context", name, reply)
    return ContextPair(Pid(int(reply["server_pid"])), int(reply["context_id"]))


def group_open(env: NamingEnvironment, group_id: int, name: str | bytes,
               mode: str = "r") -> Gen:
    """Open a file in a group context: one multicast, owner replies."""
    reply = yield from group_csname_request(
        env, group_id, RequestCode.OPEN_FILE, name, mode=mode)
    expect_ok("group_open", name, reply)
    return reply
