"""Client-side name resolution: the stub routines of paper Sec. 6.

"When the program executes an Open call ... the Open routine checks whether
the name specified starts with the standard context prefix character, '['.
If so, it sends an Open request message to the workstation context prefix
server ... If not, Open specifies the current context identifier in the
message and sends the request directly to the server implementing the
current context.  All other CSname-handling routines operate similarly ...
(The code that checks for the '[' character is localized in a single common
routine.)"

That single common routine is :func:`send_csname_request`.  Everything in
:mod:`repro.runtime` and :mod:`repro.core.query` goes through it, and it is
where the calibrated client stub overhead (0.44 ms around an Open) is
charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.context import ContextPair, WellKnownContext
from repro.core.names import as_name_bytes, as_text, has_prefix
from repro.core.protocol import make_csname_request
from repro.kernel.ipc import Delay, Now, Send
from repro.kernel.messages import Message, ReplyCode, code_name
from repro.kernel.pids import Pid
from repro.net.latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.namecache import NameCache
    from repro.obs import Observability

Gen = Generator[Any, Any, Any]

#: Reply codes that indicate the *resolution path* failed -- the addressed
#: process vanished, the transaction timed out on a lossy/partitioned wire,
#: no server answered GetPid, or the server explicitly asked for a retry.
#: These justify re-resolving and re-sending within the environment's retry
#: budget.  Authoritative answers about the *name* (NOT_FOUND, BAD_NAME,
#: NO_PERMISSION...) are never retried: asking again cannot change them.
RETRYABLE_REPLY_CODES = frozenset({
    ReplyCode.TIMEOUT,
    ReplyCode.NONEXISTENT_PROCESS,
    ReplyCode.NO_SERVER,
    ReplyCode.RETRY,
})

_RETRYABLE_CODE_INTS = frozenset(int(code) for code in RETRYABLE_REPLY_CODES)


class NameError_(RuntimeError):
    """A naming operation failed with the given reply code."""

    def __init__(self, operation: str, name: str, code: ReplyCode) -> None:
        super().__init__(f"{operation}({name!r}) failed: {code.name}")
        self.operation = operation
        self.name = name
        self.code = code


@dataclass
class NamingEnvironment:
    """The naming state a program carries (Sec. 6).

    "When a new program is executed, it is passed a process identifier and
    context identifier specifying its current context" -- ``current`` --
    plus the workstation's context prefix server.
    """

    current: ContextPair
    prefix_server: Optional[Pid]
    latency: LatencyModel
    #: Optional observability bundle: when set, every CSname request opens a
    #: root "resolve" span that the kernel's transaction and hop spans chain
    #: under (see repro.obs).  Zero simulated cost either way.
    obs: Optional["Observability"] = None
    #: Optional client-side binding cache (repro.core.namecache).  When set,
    #: ``[prefix]`` requests try a cached direct binding before the prefix
    #: server, with optimistic-send/fallback recovery on stale hints.  The
    #: default None preserves the paper's uncached E4 behaviour.
    cache: Optional["NameCache"] = None
    #: How many *additional* resolution attempts one CSname request may make
    #: after its first reply, shared between stale-hint fallback and
    #: retryable-failure re-resolution.  0 restores the fail-fast stub; the
    #: default tolerates one stale hint plus one transient path failure (or
    #: two of either) before surfacing the error.
    retry_budget: int = 2

    def route(self, name: bytes) -> tuple[Pid, int]:
        """The single common '['-check: where does this CSname request go?"""
        if has_prefix(name):
            if self.prefix_server is None:
                raise NameError_("route", name.decode(errors="replace"),
                                 ReplyCode.NO_SERVER)
            return self.prefix_server, int(WellKnownContext.DEFAULT)
        return self.current.server, self.current.context_id


def send_csname_request(env: NamingEnvironment, code: int, name: str | bytes,
                        **variant_fields: Any) -> Gen:
    """Build, route, and send one CSname request; returns the reply Message.

    Charges the calibrated stub overhead (message creation before the Send,
    reply processing after), which is what makes a local current-context
    Open cost 1.21 ms rather than the bare 0.77 ms transaction.
    """
    from repro.core.namecache import NEGATIVE_ROUTE

    data = as_name_bytes(name)
    cache = env.cache
    route = None
    if (cache is not None and env.prefix_server is not None
            and cache.should_route(data, code)):
        route = yield from cache.route(data)
    if route is NEGATIVE_ROUTE:
        # Negatively cached: a recent authoritative NOT_FOUND still within
        # its TTL.  Answer locally -- the stub cost is still charged, but no
        # message leaves the machine and no span opens (nothing resolved).
        yield Delay(env.latency.stub_pre + env.latency.stub_post)
        return Message.reply(ReplyCode.NOT_FOUND, negative_cached=True)
    if route is not None:
        dst, context_id = route.dst, route.context_id
        name_index = route.name_index
    else:
        dst, context_id, name_index = yield from _route_full(
            env, cache, data, attempt=0, reply=None)
    span = None
    start = None
    if env.obs is not None:
        start = yield Now()
        span = env.obs.spans.start(
            f"resolve:{code_name(code)}", start, actor="client-stub",
            csname=as_text(data), context_id=context_id, routed_to=str(dst),
            via_prefix=has_prefix(data),
            cache="off" if cache is None else
                  (route.source if route is not None else "miss"))
    fell_back = False
    retries = 0
    while True:
        yield Delay(env.latency.stub_pre)
        message = make_csname_request(code, data, context_id,
                                      name_index=name_index, **variant_fields)
        if span is not None:
            message.trace = span.context
        reply = yield Send(dst, message)
        if retries >= env.retry_budget:
            break
        if route is not None and cache.is_stale_reply(reply):
            # Stale-hint recovery: the cached binding let us down (dead pid,
            # invalidated context, name moved away...).  Drop it and resend
            # via full prefix-server resolution -- the caller never sees the
            # stale error, only the authoritative outcome.
            cache.invalidate_route(data, route, reply.code)
            fell_back = True
            route = None
        elif int(reply.code) not in _RETRYABLE_CODE_INTS or route is not None:
            # Either a final answer, or a direct-route reply that is not
            # stale-coded: done.  (Authoritative name errors are never
            # retried; see RETRYABLE_REPLY_CODES.)
            break
        # Re-resolve from the top: the prefix server is the authority on
        # where the name lives now, and transient path failures (lossy
        # wire, crash/restart window) deserve a bounded second look.
        retries += 1
        if span is not None:
            span.append_attr("re_resolve", code_name(reply.code))
        dst, context_id, name_index = yield from _route_full(
            env, cache, data, attempt=retries, reply=reply)
    yield Delay(env.latency.stub_post)
    if (cache is not None and (route is None or fell_back)
            and cache.should_route(data, code)):
        now = yield Now()
        cache.learn(data, reply, now)
    elif (cache is not None and reply.ok
          and not cache.should_route(data, code)):
        # Cache-bypass operations (ADD/DELETE_CONTEXT_NAME) never reach
        # ``learn``, but their success changes what cached answers are
        # still right -- a create must kill a cached NOT_FOUND for the
        # name it just bound.  Caches that care expose ``note_mutation``
        # (the shard resolver); plain memory writes, zero simulated cost.
        note = getattr(cache, "note_mutation", None)
        if note is not None:
            note(data, code)
    if span is not None:
        end = yield Now()
        env.obs.spans.finish(span, end, reply_code=code_name(reply.code),
                             ok=reply.ok, cache_fallback=fell_back,
                             retries=retries)
        env.obs.registry.histogram(
            "csname.resolve_seconds",
            op=code_name(code)).observe(end - span.start)
        if route is not None and not fell_back:
            env.obs.registry.histogram(
                "namecache.hit_seconds",
                op=code_name(code)).observe(end - start)
    return reply


def _route_full(env: NamingEnvironment, cache: Any, data: bytes,
                attempt: int, reply: Optional[Message]) -> Gen:
    """Full (non-hint) routing: where does attempt number ``attempt`` go?

    The default is the paper's single common routine (:meth:`NamingEnvironment.
    route`): '['-names to the prefix server, the rest to the current context.
    A cache exposing ``fallback_route`` -- the shard resolver
    (:mod:`repro.core.shard`) -- overrides it for '['-names: it knows which
    replica owns the prefix and, on repeated failures, walks the replica
    ring (refreshing its shard map over the wire) instead of re-sending to
    the same corpse.  ``reply`` is the failed attempt's reply (None on the
    first routing): a refusing replica stamps the current owner's pid on
    its RETRY, and the hook follows that redirect directly.  A generator
    because the ring walk costs real messages.
    """
    hook = getattr(cache, "fallback_route", None) if cache is not None else None
    if hook is not None and has_prefix(data):
        route = yield from hook(data, attempt, reply)
        if route is not None:
            return route
    dst, context_id = env.route(data)
    return dst, context_id, 0


def expect_ok(operation: str, name: str | bytes, reply: Message) -> Message:
    """Raise :class:`NameError_` unless the reply is OK."""
    if not reply.ok:
        text = name.decode(errors="replace") if isinstance(name, bytes) else name
        raise NameError_(operation, text, reply.reply_code)
    return reply


def name_to_context(env: NamingEnvironment, name: str | bytes) -> Gen:
    """Map a CSname naming a context to its (server-pid, context-id) pair."""
    from repro.kernel.messages import RequestCode

    reply = yield from send_csname_request(env, RequestCode.NAME_TO_CONTEXT, name)
    expect_ok("name_to_context", name, reply)
    return ContextPair(Pid(int(reply["server_pid"])), int(reply["context_id"]))
