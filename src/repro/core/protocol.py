"""The standard CSname request format (paper Sec. 5.3).

"Each CSname request specifies the name, length of name, index into the name
at which interpretation is to begin (or continue), and a context identifier
specifying the context in which to interpret it.  The server-pid portion of
the context is implicitly specified by sending the message directly to the
server in question."

The standard fields are a fixed part of the message; the rest is a variant
part determined by the operation code.  Crucially, *a CSNH server can perform
some processing on any CSname request even if it does not understand the
operation code* -- it can run the mapping procedure and forward the request.
That property is what lets new operations be added without touching
intermediary servers, and this module is where it is enforced: the standard
fields live under reserved keys every server knows, independent of the op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.context import ContextPair
from repro.core.names import MAX_NAME_BYTES, as_name_bytes
from repro.kernel.messages import Message, RequestCode
from repro.kernel.pids import Pid

#: Reserved field names of the standard CSname header.
FIELD_CONTEXT_ID = "context_id"
FIELD_NAME_INDEX = "name_index"
FIELD_NAME_LENGTH = "name_length"

#: Binding-advice field names (Sec. 5 hint caching, see repro.core.namecache).
#: A CSNH server that answers a CSname request OK attaches the binding the
#: client could have used to reach it directly: its own pid, the context id
#: the request carried on arrival, and the name index at which its own
#: interpretation began.  A prefix server forwarding through a *generic*
#: binding additionally stamps ``FIELD_HINT_SERVICE`` onto the forwarded
#: request, and the final server echoes it, so the client learns the prefix
#: is generic and keeps re-resolving the service pid with GetPid.  All four
#: fields ride in the short-message variant part: zero extra wire cost.
FIELD_BOUND_SERVER = "bound_server"
FIELD_BOUND_CONTEXT = "bound_context"
FIELD_BOUND_INDEX = "bound_index"
FIELD_HINT_SERVICE = "hint_service"

#: Provenance fields (coherence observability, see repro.obs.audit).  A
#: prefix server additionally stamps the binding's mutation epoch and the
#: pid of the server that authored it onto the forwarded request; the
#: final server echoes both, so a caching client records *which version*
#: of the binding it learned -- staleness becomes a computable quantity.
#: Like the advice fields these ride the short-message variant part, so
#: they cost nothing on the wire.
FIELD_HINT_EPOCH = "hint_epoch"
FIELD_HINT_SOURCE = "hint_source"

#: Request codes defined by the base protocol that carry a CSname.  Servers
#: register additional ones with :func:`register_csname_request`; "there is
#: no limit to the number of request message types that may contain CSnames."
_CSNAME_REQUEST_CODES: set[int] = {
    int(RequestCode.OPEN_FILE),
    int(RequestCode.CREATE_FILE),
    int(RequestCode.DELETE_NAME),
    int(RequestCode.RENAME_OBJECT),
    int(RequestCode.QUERY_NAME),
    int(RequestCode.MODIFY_NAME),
    int(RequestCode.NAME_TO_CONTEXT),
    int(RequestCode.OPEN_DIRECTORY),
    int(RequestCode.CREATE_CONTEXT),
    int(RequestCode.DELETE_CONTEXT),
    int(RequestCode.ADD_CONTEXT_NAME),
    int(RequestCode.DELETE_CONTEXT_NAME),
}


def register_csname_request(code: int) -> int:
    """Declare that messages with ``code`` carry the standard CSname header.

    Returns the code, so it can be used at definition sites::

        MAIL_RESOLVE = register_csname_request(0x0423)
    """
    _CSNAME_REQUEST_CODES.add(int(code))
    return int(code)


def is_csname_request(message: Message) -> bool:
    """True if the message carries the standard CSname header fields."""
    return message.code in _CSNAME_REQUEST_CODES


def csname_request_codes() -> frozenset[int]:
    return frozenset(_CSNAME_REQUEST_CODES)


def make_csname_request(
    code: int,
    name: str | bytes,
    context_id: int,
    name_index: int = 0,
    **variant_fields: Any,
) -> Message:
    """Build a CSname request with the standard header.

    The name travels as the appended segment; on the wire it occupies the
    fixed :data:`~repro.core.names.MAX_NAME_BYTES` buffer the stubs ship
    (which is what makes remote CSname operations cost what they cost --
    see latency.py).
    """
    data = as_name_bytes(name)
    if not 0 <= name_index <= len(data):
        raise ValueError(f"name index {name_index} outside name of {len(data)} bytes")
    reserved = {FIELD_CONTEXT_ID, FIELD_NAME_INDEX, FIELD_NAME_LENGTH}
    clash = reserved.intersection(variant_fields)
    if clash:
        raise ValueError(f"variant fields clash with the standard header: {clash}")
    fields = {
        FIELD_CONTEXT_ID: int(context_id),
        FIELD_NAME_INDEX: int(name_index),
        FIELD_NAME_LENGTH: len(data),
        **variant_fields,
    }
    return Message(code=int(code), fields=fields, segment=data,
                   segment_buffer=MAX_NAME_BYTES)


@dataclass(frozen=True)
class CSNameHeader:
    """The decoded standard header of a CSname request."""

    name: bytes
    name_index: int
    context_id: int

    @property
    def remaining(self) -> bytes:
        """The uninterpreted part of the name."""
        return self.name[self.name_index:]


def read_csname_header(message: Message) -> CSNameHeader:
    """Decode the standard header (raises KeyError on a non-CSname message)."""
    if message.segment is None:
        raise ValueError(f"CSname request {message!r} carries no name segment")
    length = int(message.fields[FIELD_NAME_LENGTH])
    name = bytes(message.segment[:length])
    return CSNameHeader(
        name=name,
        name_index=int(message.fields[FIELD_NAME_INDEX]),
        context_id=int(message.fields[FIELD_CONTEXT_ID]),
    )


def make_binding_advice(server: Pid, context_id: int, name_index: int,
                        hint_service: Optional[int] = None,
                        hint_epoch: Optional[int] = None,
                        hint_source: Optional[int] = None) -> dict[str, Any]:
    """The advice fields a CSNH server attaches to an OK CSname reply."""
    advice: dict[str, Any] = {
        FIELD_BOUND_SERVER: int(server.value),
        FIELD_BOUND_CONTEXT: int(context_id),
        FIELD_BOUND_INDEX: int(name_index),
    }
    if hint_service is not None:
        advice[FIELD_HINT_SERVICE] = int(hint_service)
    if hint_epoch is not None:
        advice[FIELD_HINT_EPOCH] = int(hint_epoch)
    if hint_source is not None:
        advice[FIELD_HINT_SOURCE] = int(hint_source)
    return advice


def read_binding_advice(
    reply: Message,
) -> Optional[tuple[ContextPair, int, Optional[int]]]:
    """Decode a reply's binding advice: ``(pair, name_index, service|None)``.

    Returns None when the reply carries no advice (pre-advice servers, or
    non-CSname replies); a client must treat advice as strictly optional.
    """
    raw_server = reply.get(FIELD_BOUND_SERVER)
    raw_context = reply.get(FIELD_BOUND_CONTEXT)
    raw_index = reply.get(FIELD_BOUND_INDEX)
    if raw_server is None or raw_context is None or raw_index is None:
        return None
    service = reply.get(FIELD_HINT_SERVICE)
    pair = ContextPair(Pid(int(raw_server)), int(raw_context))
    return pair, int(raw_index), int(service) if service is not None else None


def read_binding_provenance(reply: Message) -> Optional[tuple[int, int]]:
    """Decode a reply's binding provenance: ``(epoch, source_pid)``.

    Returns None when the reply carries no provenance (pre-provenance
    servers, names never routed through a prefix server); like advice,
    provenance is strictly optional and purely advisory.
    """
    raw_epoch = reply.get(FIELD_HINT_EPOCH)
    if raw_epoch is None:
        return None
    raw_source = reply.get(FIELD_HINT_SOURCE)
    return int(raw_epoch), int(raw_source) if raw_source is not None else 0


def rewrite_for_forward(message: Message, context_id: int,
                        name_index: int) -> Message:
    """Rewrite the standard header before forwarding (Sec. 5.4).

    "the name index field in the request message is updated to point to the
    first character of the name not yet parsed, the context id field is set
    to the value of CurrentContext, and the request is forwarded."

    The variant part is untouched: the forwarding server need not understand
    the operation.
    """
    fields = dict(message.fields)
    fields[FIELD_CONTEXT_ID] = int(context_id)
    fields[FIELD_NAME_INDEX] = int(name_index)
    # The trace context rides along so causality survives the rewrite; the
    # kernel re-points it at the forwarding hop's span when one exists.
    return Message(code=message.code, fields=fields, segment=message.segment,
                   segment_buffer=message.segment_buffer, trace=message.trace)
