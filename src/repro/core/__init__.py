"""The paper's contribution: the V name-handling protocol and context system.

- :mod:`repro.core.names` -- CSnames and the ``[prefix]`` syntax (Sec. 5.1, 5.8).
- :mod:`repro.core.context` -- contexts, well-known context ids (Sec. 5.2).
- :mod:`repro.core.protocol` -- the standard CSname request fields (Sec. 5.3).
- :mod:`repro.core.descriptors` -- typed object description records (Sec. 5.5).
- :mod:`repro.core.mapping` -- the name mapping procedure (Sec. 5.4).
- :mod:`repro.core.csnh` -- the CSNH server base class every name-handling
  server conforms to.
- :mod:`repro.core.directory` -- context directories readable as files (Sec. 5.6).
- :mod:`repro.core.inverse` -- inverse mappings and their failure modes (Sec. 6).
- :mod:`repro.core.prefix_server` -- the per-user context prefix server (Sec. 5.8, 6).
- :mod:`repro.core.resolver` -- the client-side stub routines (Sec. 6).
- :mod:`repro.core.namecache` -- the client-side binding cache with
  stale-hint recovery (Sec. 5's direct-binding observation, E12).
- :mod:`repro.core.group_naming` -- multicast name resolution (Sec. 7).
"""

from repro.core.context import ContextPair, WellKnownContext
from repro.core.descriptors import DescriptorTag, ObjectDescription
from repro.core.namecache import BindingCache, NameCache
from repro.core.names import parse_prefix, split_components
from repro.core.prefix_server import ContextPrefixServer
from repro.core.protocol import make_csname_request

__all__ = [
    "ContextPair",
    "WellKnownContext",
    "ObjectDescription",
    "DescriptorTag",
    "make_csname_request",
    "parse_prefix",
    "split_components",
    "ContextPrefixServer",
    "BindingCache",
    "NameCache",
]
