"""The name mapping procedure (paper Sec. 5.4).

"The server begins by looking at the name itself, not the operation code. ...
Names are ordinarily interpreted left-to-right ... As each component of the
name is parsed, it is looked up in the current context.  If the name
specifies a context, the variable CurrentContext is updated.  If the new
context is implemented by some other server, the name index field in the
request message is updated to point to the first character of the name not
yet parsed, the context id field is set to the value of CurrentContext, and
the request is forwarded to the server that implements the context."

The walk is generic over a :class:`NameSpace`: hierarchical servers (file
server, prefix server, team server ...) supply ``root``/``lookup`` and get
the protocol behaviour -- including cross-server forwarding -- for free.
Servers with exotic syntax (the mail server) skip this module entirely,
which the protocol explicitly permits ("If the server does not provide
pointers to contexts in other servers as part of its name space, it may
interpret the name in any way it chooses").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol, Union

from repro.core.context import ContextPair
from repro.core.names import next_component
from repro.kernel.messages import ReplyCode

# ---------------------------------------------------------------------------
# What a lookup can yield.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Leaf:
    """The component names a non-context object (e.g. a file)."""

    ref: Any


@dataclass(frozen=True)
class SubContext:
    """The component names a context on *this* server."""

    ref: Any


@dataclass(frozen=True)
class RemoteLink:
    """The component names a context implemented by *another* server.

    This is the curved arrow in the paper's Figure 4: a pointer from one
    server's name space into another's, and the trigger for forwarding.
    """

    pair: ContextPair


LookupResult = Union[Leaf, SubContext, RemoteLink, None]


class NameSpace(Protocol):
    """What a hierarchical server exposes to the mapping procedure."""

    def root(self, context_id: int) -> Optional[Any]:
        """Map a context identifier to an internal context reference."""

    def lookup(self, context_ref: Any, component: bytes) -> LookupResult:
        """Look one component up in a context."""


# ---------------------------------------------------------------------------
# Outcomes of a mapping.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedObject:
    """The name mapped, on this server, to ``ref``."""

    ref: Any
    is_context: bool
    parent_ref: Optional[Any]   # context holding the final binding (None = root itself)
    component: bytes            # final component ("" when the name was empty)
    index: int                  # index just past the interpreted part


@dataclass(frozen=True)
class ResolvedParent:
    """For create-style ops: the parent context plus the unbound final component."""

    parent_ref: Any
    component: bytes
    index: int


@dataclass(frozen=True)
class ForwardName:
    """Interpretation must continue at another server (Sec. 5.4 forwarding).

    ``extra_fields`` lets the forwarding server stamp variant fields onto
    the rewritten request (beyond the standard header rewrite) -- the prefix
    server uses it to mark requests forwarded through a *generic* binding,
    so the final server's binding advice can tell the client to re-resolve
    the service pid rather than cache it (see repro.core.namecache).
    """

    pair: ContextPair
    index: int
    extra_fields: Optional[dict] = None


@dataclass(frozen=True)
class MappingFault:
    """The name cannot be mapped; reply with ``code``.

    ``extra_fields`` ride in the error reply's variant part -- the
    replicated prefix server (repro.core.shard) uses them to tell a
    refused client *which* replica currently owns the prefix, so the
    retry goes straight to the authority instead of groping the ring.
    """

    code: ReplyCode
    detail: str = ""
    extra_fields: Optional[dict] = None

    @property
    def not_found(self) -> bool:
        return self.code is ReplyCode.NOT_FOUND


MappingOutcome = Union[ResolvedObject, ResolvedParent, ForwardName, MappingFault]

#: Observability hook: called once per component examined, with the
#: component and what the lookup decided ("leaf", "context", "remote-link",
#: "missing", "not-a-context").  See CSNHServer.map_request, which feeds
#: these steps into the request's hop span.
StepObserver = Callable[[bytes, str], None]


def map_name(
    namespace: NameSpace,
    context_id: int,
    name: bytes,
    index: int,
    want_parent: bool = False,
    observer: Optional[StepObserver] = None,
) -> MappingOutcome:
    """Run the Sec. 5.4 procedure over ``namespace``.

    ``want_parent=True`` is the create/add variant: stop at the context that
    would hold the final component, without requiring the component to be
    bound (CREATE_FILE needs the parent, not the -- nonexistent -- child).
    An already-bound final component still resolves the parent, letting the
    operation decide whether that is an error.
    """
    if observer is None:
        observer = _null_observer
    current = namespace.root(context_id)
    if current is None:
        return MappingFault(ReplyCode.INVALID_CONTEXT,
                            f"no context {context_id:#06x} on this server")
    parent: Optional[Any] = None
    component = b""
    while True:
        next_piece, next_index = next_component(name, index)
        if next_piece == b"":
            # Name exhausted: it denotes the current context itself.
            if want_parent:
                if parent is None:
                    return MappingFault(
                        ReplyCode.BAD_NAME,
                        "empty name cannot denote a new binding")
                return ResolvedParent(parent, component, index)
            return ResolvedObject(ref=current, is_context=True,
                                  parent_ref=parent, component=component,
                                  index=index)
        remaining_after, __ = next_component(name, next_index)
        is_final = remaining_after == b""
        if want_parent and is_final:
            observer(next_piece, "parent-slot")
            return ResolvedParent(current, next_piece, next_index)
        entry = namespace.lookup(current, next_piece)
        if entry is None:
            observer(next_piece, "missing")
            return MappingFault(ReplyCode.NOT_FOUND,
                                f"no {next_piece!r} in context")
        if isinstance(entry, RemoteLink):
            observer(next_piece, "remote-link")
            return ForwardName(entry.pair, next_index)
        if isinstance(entry, Leaf):
            if not is_final:
                observer(next_piece, "not-a-context")
                return MappingFault(
                    ReplyCode.NOT_A_CONTEXT,
                    f"{next_piece!r} is not a context but the name continues")
            observer(next_piece, "leaf")
            return ResolvedObject(ref=entry.ref, is_context=False,
                                  parent_ref=current, component=next_piece,
                                  index=next_index)
        assert isinstance(entry, SubContext)
        observer(next_piece, "context")
        parent = current
        current = entry.ref
        component = next_piece
        index = next_index


def _null_observer(component: bytes, kind: str) -> None:
    return None
