"""Consistency auditing for the centralized baseline (paper Sec. 2.2).

"Separating the naming implementation from the implementation of the named
entity makes it more difficult to ensure the name server's information is
kept consistent with the objects being named."

:func:`audit` cross-checks the registry against the object servers and
reports the two failure species multi-server updates can strand:

- **dangling names** -- the registry names a UID no server stores (a delete
  crashed after the object went away);
- **orphan objects** -- a server stores a UID no name reaches (a create
  crashed before registration, or an unregister ran before the delete).

In the distributed V model the same audit is definitionally clean: the name
and the object live in one server, so a crash either removes both or
neither.  E8b runs both audits after identical fault-injected workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.nameserver import CentralNameServer
from repro.baseline.objectserver import UidObjectServer


@dataclass
class ConsistencyReport:
    """Outcome of one registry-vs-servers audit."""

    bindings: int = 0
    objects: int = 0
    dangling_names: list[bytes] = field(default_factory=list)
    orphan_objects: list[int] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.dangling_names and not self.orphan_objects

    @property
    def inconsistency_count(self) -> int:
        return len(self.dangling_names) + len(self.orphan_objects)


def audit(name_server: CentralNameServer,
          object_servers: list[UidObjectServer]) -> ConsistencyReport:
    """Cross-check the central registry against the object stores.

    This inspects server state directly (it is the omniscient auditor a
    real system does not have -- which is rather the point).
    """
    report = ConsistencyReport()
    stored: dict[int, UidObjectServer] = {}
    for server in object_servers:
        for uid in server.objects:
            stored[uid] = server
    report.objects = len(stored)
    report.bindings = len(name_server.bindings)

    named_uids = set()
    for name, binding in name_server.bindings.items():
        named_uids.add(binding.uid)
        if binding.uid not in stored:
            report.dangling_names.append(name)
    for uid in stored:
        if uid not in named_uids:
            report.orphan_objects.append(uid)
    report.dangling_names.sort()
    report.orphan_objects.sort()
    return report
