"""Baseline object servers: storage with the naming removed (paper Sec. 2.1).

In the centralized model the object server knows nothing about names -- it
stores objects keyed by UID and trusts clients to have obtained the UID from
the name server.  This is the design the paper contrasts with the V file
server, where "mapping from a name to its associated object is an internal
operation for the server that maintains both."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.baseline.uids import UidAllocator
from repro.core.csnh import CSNHServer
from repro.kernel.ipc import Delivery
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.net.latency import DISK_PAGE_BYTES
from repro.vio.instance import Instance

Gen = Generator[Any, Any, Any]


@dataclass
class StoredObject:
    uid: int
    kind: str = "file"
    data: bytearray = field(default_factory=bytearray)


class UidInstance(Instance):
    """An open UID-named object."""

    def __init__(self, owner: Pid, obj: StoredObject) -> None:
        super().__init__(owner, block_size=DISK_PAGE_BYTES,
                         readable=True, writable=True)
        self.obj = obj

    def size_bytes(self) -> int:
        return len(self.obj.data)

    def read_block(self, block: int) -> Gen:
        yield from ()
        start = block * self.block_size
        if start >= len(self.obj.data):
            return ReplyCode.END_OF_FILE, b""
        return ReplyCode.OK, bytes(self.obj.data[start : start + self.block_size])

    def write_block(self, block: int, data: bytes) -> Gen:
        yield from ()
        start = block * self.block_size
        end = start + len(data)
        if end > len(self.obj.data):
            self.obj.data.extend(b"\x00" * (end - len(self.obj.data)))
        self.obj.data[start:end] = data
        return ReplyCode.OK, len(data)


class UidObjectServer(CSNHServer):
    """Stores objects by UID; no name space of its own."""

    server_name = "objectserver"
    service_id = None  # located by pid via the name server's bindings

    def __init__(self, allocator_id: int) -> None:
        super().__init__()
        self.uids = UidAllocator(allocator_id)
        self.objects: dict[int, StoredObject] = {}
        self.register_request_op(RequestCode.OBJ_CREATE, self.op_create)
        self.register_request_op(RequestCode.OBJ_DELETE, self.op_delete)
        self.register_request_op(RequestCode.OBJ_OPEN, self.op_open)
        self.register_request_op(RequestCode.OBJ_QUERY, self.op_query)
        self.register_request_op(RequestCode.OBJ_LIST, self.op_list)

    def op_create(self, delivery: Delivery) -> Gen:
        uid = self.uids.allocate()
        obj = StoredObject(uid=uid,
                           kind=str(delivery.message.get("kind", "file")))
        if delivery.message.segment:
            obj.data.extend(delivery.message.segment)
        self.objects[uid] = obj
        yield from self.reply_ok(delivery, uid=uid)

    def _object_for(self, delivery: Delivery) -> Optional[StoredObject]:
        return self.objects.get(int(delivery.message.get("uid", -1)))

    def op_delete(self, delivery: Delivery) -> Gen:
        uid = int(delivery.message.get("uid", -1))
        if self.objects.pop(uid, None) is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        yield from self.reply_ok(delivery)

    def op_open(self, delivery: Delivery) -> Gen:
        obj = self._object_for(delivery)
        if obj is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        instance = UidInstance(delivery.sender, obj)
        instance_id = self.instances.insert(instance)
        assert self.pid is not None
        yield from self.reply_ok(delivery, instance=instance_id,
                                 block_size=instance.block_size,
                                 size_bytes=len(obj.data),
                                 server_pid=self.pid.value)

    def op_query(self, delivery: Delivery) -> Gen:
        obj = self._object_for(delivery)
        if obj is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        yield from self.reply_ok(delivery, uid=obj.uid, kind=obj.kind,
                                 size_bytes=len(obj.data))

    def op_list(self, delivery: Delivery) -> Gen:
        yield from self.reply_ok(delivery, count=len(self.objects),
                                 uids=sorted(self.objects))
