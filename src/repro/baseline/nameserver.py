"""The central name server (paper Sec. 2.1's first model).

Maps full character-string names to (UID, object-server pid) bindings.  It
is a perfectly competent server -- in-memory table, O(1) lookups, the same
kernel transport as everything else.  What E8 measures is the architecture:

- every fresh name use costs one extra transaction here (E8a);
- deleting an object touches two servers, so a crash in between strands a
  *dangling name* here or an *orphan object* there (E8b);
- when this process is down, nothing in the system can be named, however
  healthy the object servers are (E8c) -- "a name server ... represents a
  central failure point."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.csnh import CSNHServer
from repro.core.descriptors import NameBindingDescription, ObjectDescription
from repro.kernel.ipc import Delivery
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.services import ServiceId

Gen = Generator[Any, Any, Any]


@dataclass
class NameBinding:
    """One registry entry."""

    name: bytes
    uid: int
    server_pid: int
    object_kind: str = "file"


class CentralNameServer(CSNHServer):
    """The logically centralized registry."""

    server_name = "nameserver"
    service_id = int(ServiceId.NAME_SERVER)

    def __init__(self) -> None:
        super().__init__()
        self.bindings: dict[bytes, NameBinding] = {}
        self.lookups = 0
        self.misses = 0
        self.register_request_op(RequestCode.NS_REGISTER, self.op_register)
        self.register_request_op(RequestCode.NS_LOOKUP, self.op_lookup)
        self.register_request_op(RequestCode.NS_UNREGISTER, self.op_unregister)
        self.register_request_op(RequestCode.NS_LIST, self.op_list)

    # ------------------------------------------------------------------ ops

    def op_register(self, delivery: Delivery) -> Gen:
        message = delivery.message
        name = bytes(message.segment or b"")
        uid = message.get("uid")
        server_pid = message.get("server_pid")
        if not name or uid is None or server_pid is None:
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        if name in self.bindings and not bool(message.get("replace", False)):
            yield from self.reply_error(delivery, ReplyCode.NAME_EXISTS)
            return
        self.bindings[name] = NameBinding(
            name=name, uid=int(uid), server_pid=int(server_pid),
            object_kind=str(message.get("kind", "file")))
        yield from self.reply_ok(delivery)

    def op_lookup(self, delivery: Delivery) -> Gen:
        name = bytes(delivery.message.segment or b"")
        self.lookups += 1
        binding = self.bindings.get(name)
        if binding is None:
            self.misses += 1
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        yield from self.reply_ok(delivery, uid=binding.uid,
                                 server_pid=binding.server_pid,
                                 kind=binding.object_kind)

    def op_unregister(self, delivery: Delivery) -> Gen:
        name = bytes(delivery.message.segment or b"")
        if self.bindings.pop(name, None) is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        yield from self.reply_ok(delivery)

    def op_list(self, delivery: Delivery) -> Gen:
        records = b"".join(record.encode()
                           for record in self._all_records())
        yield from self.reply_ok(delivery, segment=records,
                                 count=len(self.bindings))

    def _all_records(self) -> list[NameBindingDescription]:
        return [
            NameBindingDescription(
                name=binding.name.decode(errors="replace"), uid=binding.uid,
                server_pid=binding.server_pid,
                object_kind=binding.object_kind)
            for __, binding in sorted(self.bindings.items())
        ]

    # ------------------------------------------------------------- protocol

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        return list(self._all_records())

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        return b"" if context_id == 0 else None
