"""Globally unique identifiers for the centralized baseline (paper Sec. 2.2).

"A common design is to use low-level globally unique identifiers (e.g.,
48-bit values), with the view that such identifiers are efficient to
communicate and manipulate."

The paper's criticism is architectural, not mechanical: the UIDs work fine,
but they are an *extra level of naming* -- the name server can only map a
name to a UID, never to the object, so every server must additionally map
UIDs to its internal identifiers.  :class:`UidAllocator` makes the layering
explicit: a structured 48-bit value (allocator id | sequence), unique across
the domain without coordination, exactly like the designs the paper cites.
"""

from __future__ import annotations

UID_BITS = 48
ALLOCATOR_BITS = 12
SEQUENCE_BITS = UID_BITS - ALLOCATOR_BITS

UID_MAX = (1 << UID_BITS) - 1
ALLOCATOR_MAX = (1 << ALLOCATOR_BITS) - 1
SEQUENCE_MAX = (1 << SEQUENCE_BITS) - 1


class UidAllocator:
    """Allocates 48-bit UIDs: (allocator-id << 36) | sequence."""

    def __init__(self, allocator_id: int) -> None:
        if not 0 <= allocator_id <= ALLOCATOR_MAX:
            raise ValueError(f"allocator id out of range: {allocator_id}")
        self.allocator_id = allocator_id
        self._sequence = 0

    def allocate(self) -> int:
        if self._sequence > SEQUENCE_MAX:
            raise RuntimeError("uid sequence space exhausted")
        uid = (self.allocator_id << SEQUENCE_BITS) | self._sequence
        self._sequence += 1
        return uid

    @property
    def allocated(self) -> int:
        return self._sequence


def allocator_of(uid: int) -> int:
    """Which allocator issued this UID."""
    if not 0 <= uid <= UID_MAX:
        raise ValueError(f"uid out of 48-bit range: {uid:#x}")
    return uid >> SEQUENCE_BITS


def sequence_of(uid: int) -> int:
    if not 0 <= uid <= UID_MAX:
        raise ValueError(f"uid out of 48-bit range: {uid:#x}")
    return uid & SEQUENCE_MAX
