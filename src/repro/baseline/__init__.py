"""The centralized naming baseline (paper Sec. 2.1-2.2).

"In one model, a logically centralized *name server* provides name mapping
as a service. ... Ideally, every server, object, and service in such a
system is registered with the name server, and clients present the
registered names to the name server when referring to these entities."

We implement that model honestly -- same kernel, same wire, reasonable
engineering -- so the paper's comparative claims become measurements:

- :mod:`repro.baseline.uids` -- the 48-bit globally-unique identifiers the
  centralized design needs as its extra level of naming.
- :mod:`repro.baseline.nameserver` -- the central registry: full name ->
  (UID, object server).
- :mod:`repro.baseline.objectserver` -- storage servers that know objects
  only by UID (naming removed, per the model).
- :mod:`repro.baseline.client` -- the client library: every fresh name use
  costs a name-server transaction before the object operation (E8a); an
  optional client cache exhibits the staleness the paper warns about.
- :mod:`repro.baseline.consistency` -- the audit that counts dangling names
  and orphan objects after multi-server operations interleave with crashes
  (E8b).
"""

from repro.baseline.client import BaselineClient
from repro.baseline.consistency import ConsistencyReport, audit
from repro.baseline.nameserver import CentralNameServer
from repro.baseline.objectserver import UidObjectServer
from repro.baseline.uids import UidAllocator

__all__ = [
    "CentralNameServer",
    "UidObjectServer",
    "BaselineClient",
    "UidAllocator",
    "audit",
    "ConsistencyReport",
]
