"""The centralized-model client library (paper Sec. 2.1-2.2).

Every operation on a *name* decomposes into (1) a name-server transaction to
get the (UID, object-server) binding, then (2) the object operation -- the
"extra cost of interacting with one more server ... every time a name is
referenced" that motivates the V design (E8a).

An optional client-side cache removes cost (1) for repeated names, and in
exchange imports the staleness the paper predicts: "Caching the name in the
client would introduce inconsistency problems and only benefit the few
applications that reuse names."  The cache here deliberately has no
invalidation protocol, because building one is precisely the consistency
machinery the paper says the centralized model forces on you.  It is the
``ttl=None`` configuration of :class:`repro.core.namecache.BindingCache` --
same substrate as the V-side hint cache, minus every freshness channel that
module wires up (advice learning, stale-reply fallback, prefix notices,
registration-removal subscription).

Multi-step operations expose their crash windows explicitly
(``delete(..., crash_after=...)``) so E8b can inject failures between the
steps, which is how the dangling-name counts are produced.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from repro.core.namecache import BindingCache
from repro.core.names import as_name_bytes
from repro.kernel.ipc import Delay, Send
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.net.latency import LatencyModel
from repro.vio.client import FileStream


Gen = Generator[Any, Any, Any]


class BaselineError(RuntimeError):
    def __init__(self, operation: str, code: ReplyCode) -> None:
        super().__init__(f"{operation} failed: {code.name}")
        self.operation = operation
        self.code = code


class CrashPoint(enum.Enum):
    """Where a multi-server operation can be cut short (fault injection)."""

    NONE = "none"
    AFTER_OBJECT_DELETE = "after_object_delete"   # object gone, name remains
    AFTER_OBJECT_CREATE = "after_object_create"   # object exists, unnamed


class ClientCrashed(RuntimeError):
    """The simulated client stopped mid-operation (E8b's fault)."""


class BaselineClient:
    """Client-side library for the centralized naming model."""

    def __init__(self, name_server: Pid, latency: LatencyModel,
                 cache_enabled: bool = False,
                 cache_max_entries: int = 4096) -> None:
        self.name_server = name_server
        self.latency = latency
        self.cache_enabled = cache_enabled
        # Deliberately-stale configuration: no TTL, no invalidation channel.
        self._cache = BindingCache(max_entries=cache_max_entries, ttl=None)
        self.name_server_transactions = 0

    @property
    def cache_hits(self) -> int:
        return self._cache.hits

    # ----------------------------------------------------------------- lookup

    def lookup(self, name: str | bytes) -> Gen:
        """Resolve a name to (uid, object-server pid)."""
        key = as_name_bytes(name)
        if self.cache_enabled:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        yield Delay(self.latency.stub_pre)
        reply = yield Send(self.name_server, Message.request(
            RequestCode.NS_LOOKUP, segment=key, segment_buffer=256))
        yield Delay(self.latency.stub_post)
        self.name_server_transactions += 1
        if not reply.ok:
            raise BaselineError("lookup", reply.reply_code)
        binding = (int(reply["uid"]), Pid(int(reply["server_pid"])))
        if self.cache_enabled:
            self._cache.put(key, binding)
        return binding

    # ----------------------------------------------------------------- create

    def create(self, name: str | bytes, object_server: Pid,
               data: bytes = b"", kind: str = "file",
               crash_at: CrashPoint = CrashPoint.NONE) -> Gen:
        """Create an object and register its name: two servers, in order."""
        key = as_name_bytes(name)
        yield Delay(self.latency.stub_pre)
        reply = yield Send(object_server, Message.request(
            RequestCode.OBJ_CREATE, segment=data, kind=kind))
        if not reply.ok:
            raise BaselineError("create.object", reply.reply_code)
        uid = int(reply["uid"])
        if crash_at is CrashPoint.AFTER_OBJECT_CREATE:
            raise ClientCrashed("crashed before registering the name")
        reply = yield Send(self.name_server, Message.request(
            RequestCode.NS_REGISTER, segment=key, segment_buffer=256,
            uid=uid, server_pid=object_server.value, kind=kind))
        yield Delay(self.latency.stub_post)
        self.name_server_transactions += 1
        if not reply.ok:
            raise BaselineError("create.register", reply.reply_code)
        return uid

    # ----------------------------------------------------------------- delete

    def delete(self, name: str | bytes,
               crash_at: CrashPoint = CrashPoint.NONE) -> Gen:
        """Delete by name: lookup, delete at the object server, unregister.

        Three transactions across two servers.  A crash after the object
        delete leaves the registry pointing at nothing -- the dangling name
        of Sec. 2.2 -- unless the whole thing is wrapped in the multi-server
        atomic transaction the paper notes would erode the design's
        efficiency.
        """
        key = as_name_bytes(name)
        uid, object_server = yield from self.lookup(key)
        reply = yield Send(object_server, Message.request(
            RequestCode.OBJ_DELETE, uid=uid))
        if not reply.ok:
            if reply.reply_code is ReplyCode.NOT_FOUND:
                # The registry was already stale: a previously dangling name.
                raise BaselineError("delete.stale", ReplyCode.INCONSISTENT)
            raise BaselineError("delete.object", reply.reply_code)
        if crash_at is CrashPoint.AFTER_OBJECT_DELETE:
            raise ClientCrashed("crashed before unregistering the name")
        reply = yield Send(self.name_server, Message.request(
            RequestCode.NS_UNREGISTER, segment=key, segment_buffer=256))
        self.name_server_transactions += 1
        if not reply.ok:
            raise BaselineError("delete.unregister", reply.reply_code)
        self._cache.invalidate(key)

    # ------------------------------------------------------------------- open

    def open(self, name: str | bytes) -> Gen:
        """Open by name: the E8a fast path (lookup + open vs V's one Send)."""
        uid, object_server = yield from self.lookup(name)
        yield Delay(self.latency.stub_pre)
        reply = yield Send(object_server, Message.request(
            RequestCode.OBJ_OPEN, uid=uid))
        yield Delay(self.latency.stub_post)
        if not reply.ok:
            if reply.reply_code is ReplyCode.NOT_FOUND:
                # Binding (or cache entry) points at a deleted object.
                raise BaselineError("open.stale", ReplyCode.INCONSISTENT)
            raise BaselineError("open", reply.reply_code)
        return FileStream(server=Pid(int(reply["server_pid"])),
                          instance=int(reply["instance"]),
                          block_size=int(reply["block_size"]))

    def invalidate_cache(self, name: str | bytes | None = None) -> None:
        if name is None:
            self._cache.clear()
        else:
            self._cache.invalidate(as_name_bytes(name))
