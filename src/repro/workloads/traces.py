"""Access traces over a name population.

Real file traffic is heavily skewed (a few names take most of the
references) and mostly reads; the traces here are parameterized on both so
E8a can show how the centralized model's per-use lookup cost interacts with
name reuse (which is exactly where the paper predicts caching helps "only
the few applications that reuse names").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.rng import DeterministicRng


class Operation(enum.Enum):
    OPEN_READ = "open_read"
    OPEN_WRITE = "open_write"
    QUERY = "query"
    DELETE = "delete"


@dataclass(frozen=True)
class AccessTrace:
    """A deterministic sequence of (operation, name) events."""

    events: tuple[tuple[Operation, str], ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def unique_names(self) -> int:
        return len({name for __, name in self.events})

    def reuse_fraction(self) -> float:
        """Fraction of events whose name appeared earlier in the trace."""
        seen: set[str] = set()
        reused = 0
        for __, name in self.events:
            if name in seen:
                reused += 1
            seen.add(name)
        return reused / len(self.events) if self.events else 0.0


def zipf_trace(names: list[str], length: int, seed: int = 0,
               skew: float = 1.0, read_fraction: float = 0.9,
               query_fraction: float = 0.05) -> AccessTrace:
    """A Zipf(skew)-popular trace over ``names``.

    ``read_fraction`` of events are OPEN_READ; of the rest,
    ``query_fraction`` (of the total) are QUERY and the remainder
    OPEN_WRITE.  Deletes are not generated here (E8b drives those
    explicitly with its crash schedule).
    """
    if not names:
        raise ValueError("empty name population")
    rng = DeterministicRng(seed)
    events = []
    for __ in range(length):
        name = names[rng.zipf_index("popularity", len(names), skew)]
        draw = rng.uniform("opmix", 0.0, 1.0)
        if draw < read_fraction:
            op = Operation.OPEN_READ
        elif draw < read_fraction + query_fraction:
            op = Operation.QUERY
        else:
            op = Operation.OPEN_WRITE
        events.append((op, name))
    return AccessTrace(events=tuple(events))


def uniform_trace(names: list[str], length: int, seed: int = 0) -> AccessTrace:
    """A no-reuse-bias control trace: uniform name popularity, all reads."""
    rng = DeterministicRng(seed)
    events = tuple(
        (Operation.OPEN_READ, names[rng.randint("uniform", 0, len(names) - 1)])
        for __ in range(length))
    return AccessTrace(events=events)
