"""Synthetic name trees.

Builds the same logical name population two ways -- into a V file server's
store (names with the objects) and into the centralized baseline (names in
the registry, objects by UID on object servers) -- so the E8 experiments
compare architectures over identical name sets.

Population happens at setup time, directly against server state, because
what the experiments measure is *steady-state use* of an existing name
space, not bulk ingest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.nameserver import CentralNameServer, NameBinding
from repro.baseline.objectserver import StoredObject, UidObjectServer
from repro.servers.fileserver.server import VFileServer
from repro.servers.fileserver.storage import DirectoryNode
from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class NameTreeSpec:
    """Shape of a synthetic name tree.

    ``depth`` levels of directories, ``fanout`` subdirectories per level,
    ``files_per_directory`` leaf files in every directory, file contents of
    ``file_bytes`` (compressible filler; content is rarely what matters).
    """

    depth: int = 2
    fanout: int = 3
    files_per_directory: int = 4
    file_bytes: int = 256

    def directory_count(self) -> int:
        total, level = 1, 1
        for __ in range(self.depth):
            level *= self.fanout
            total += level
        return total

    def file_count(self) -> int:
        return self.directory_count() * self.files_per_directory


def _walk_paths(spec: NameTreeSpec) -> tuple[list[str], list[str]]:
    """All (directory_paths, file_paths) the spec implies, root-relative."""
    directories: list[str] = [""]
    frontier = [""]
    for __ in range(spec.depth):
        next_frontier = []
        for base in frontier:
            for index in range(spec.fanout):
                path = f"{base}d{index}" if not base else f"{base}/d{index}"
                directories.append(path)
                next_frontier.append(path)
        frontier = next_frontier
    files = []
    for directory in directories:
        for index in range(spec.files_per_directory):
            name = f"f{index}.dat"
            files.append(name if not directory else f"{directory}/{name}")
    return directories, files


def populate_fileserver(server: VFileServer, spec: NameTreeSpec,
                        root: str = "data") -> list[str]:
    """Build the tree under ``root`` on a V file server; returns file paths."""
    base = server.store.make_path(root)
    assert isinstance(base, DirectoryNode)
    directories, files = _walk_paths(spec)
    for directory in directories[1:]:
        server.store.make_path(f"{root}/{directory}")
    content = b"v" * spec.file_bytes
    result = []
    for path in files:
        full = f"{root}/{path}"
        node = server.store.make_path(full, directory=False)
        node.data[:] = content  # type: ignore[union-attr]
        result.append(full)
    return result


def populate_baseline(name_server: CentralNameServer,
                      object_servers: list[UidObjectServer],
                      spec: NameTreeSpec, root: str = "data",
                      seed: int = 0) -> list[str]:
    """Build the same name population in the centralized model.

    Objects are spread across the object servers round-robin-with-jitter
    (deterministic); each file's full path becomes one registry binding.
    """
    rng = DeterministicRng(seed)
    __, files = _walk_paths(spec)
    content = b"c" * spec.file_bytes
    result = []
    for index, path in enumerate(files):
        full = f"{root}/{path}"
        server = object_servers[
            (index + rng.randint("spread", 0, 1)) % len(object_servers)]
        uid = server.uids.allocate()
        server.objects[uid] = StoredObject(uid=uid, data=bytearray(content))
        pid_value = server.pid.value if server.pid is not None else 0
        name_server.bindings[full.encode()] = NameBinding(
            name=full.encode(), uid=uid, server_pid=pid_value)
        result.append(full)
    return result
