"""Workload generation for the benchmarks.

- :mod:`repro.workloads.namegen` -- synthetic name trees (populating file
  servers and, in parallel form, the centralized baseline).
- :mod:`repro.workloads.traces` -- access traces (Zipf-skewed name
  popularity, read/write mixes) over those trees.
"""

from repro.workloads.namegen import NameTreeSpec, populate_baseline, populate_fileserver
from repro.workloads.traces import AccessTrace, Operation, zipf_trace

__all__ = [
    "NameTreeSpec",
    "populate_fileserver",
    "populate_baseline",
    "AccessTrace",
    "Operation",
    "zipf_trace",
]
