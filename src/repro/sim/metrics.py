"""Measurement plumbing: counters, gauges, and latency recorders.

Benchmarks observe the simulation exclusively through this module, so the
same recorders serve unit tests (exact assertions against calibrated
constants) and the benchmark harness (summary statistics for the tables in
EXPERIMENTS.md).

Since the observability work this is a thin compatibility shim over
:class:`repro.obs.registry.MetricsRegistry`: every ``incr`` lands in a real
registry counter (shared with the span-emitting kernel when a Domain is
built with an :class:`~repro.obs.Observability` bundle), and every latency
sample is mirrored into a registry histogram, so ``repro.obs.export`` sees
benchmark latencies without the benches changing a line.  The exact-sample
:class:`LatencyRecorder` is kept because tests assert calibrated constants
to sub-percent tolerance, which fixed buckets cannot represent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.obs.registry import Histogram, MetricsError, MetricsRegistry, NoSamplesError

__all__ = [
    "LatencyRecorder",
    "LatencySummary",
    "Metrics",
    "MetricsError",
    "NoSamplesError",
]


@dataclass
class LatencySummary:
    """Summary statistics over a set of latency samples (seconds)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float
    stddev: float

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    @property
    def mean_us(self) -> float:
        return self.mean * 1e6


class LatencyRecorder:
    """Collects exact latency samples for one named operation.

    When given a ``mirror`` histogram every sample is also observed there,
    so a shared :class:`~repro.obs.registry.MetricsRegistry` exports the
    same data in bucketed form.
    """

    def __init__(self, name: str, mirror: Optional[Histogram] = None) -> None:
        self.name = name
        self.samples: list[float] = []
        self.mirror = mirror

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise MetricsError(
                f"negative latency sample for {self.name!r}: {seconds}")
        self.samples.append(seconds)
        if self.mirror is not None:
            self.mirror.observe(seconds)

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.record(sample)

    def summary(self) -> LatencySummary:
        if not self.samples:
            raise NoSamplesError(f"no samples recorded for {self.name!r}")
        ordered = sorted(self.samples)
        count = len(ordered)
        mean = sum(ordered) / count
        variance = sum((s - mean) ** 2 for s in ordered) / count
        return LatencySummary(
            count=count,
            mean=mean,
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
            stddev=math.sqrt(variance),
        )


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample list."""
    if not ordered:
        raise NoSamplesError("empty sample list")
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


class Metrics:
    """A bag of named counters and latency recorders shared by a simulation.

    Components increment counters (``metrics.incr("net.frames")``) and record
    latencies (``metrics.latency("open.remote").record(dt)``); benches read
    them back after the run.  Pass ``registry=`` to share instruments with an
    observability bundle; otherwise a private registry is created.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._recorders: dict[str, LatencyRecorder] = {}
        # Hot-path cache: incr() runs once per kernel packet/frame, and the
        # registry's counter() lookup (tag-key construction included) was a
        # measurable slice of fleet-scale runs.  Untagged counters are
        # interned here by bare name; the objects are the registry's own,
        # so both views stay exactly in sync.
        self._counters_by_name: dict = {}

    @property
    def counters(self) -> dict[str, int]:
        """Legacy dict view of the (untagged) counters."""
        return self.registry.counter_values()

    def incr(self, name: str, amount: int = 1) -> None:
        counter = self._counters_by_name.get(name)
        if counter is None:
            counter = self.registry.counter(name)
            self._counters_by_name[name] = counter
        counter.value += amount

    def count(self, name: str) -> int:
        return self.registry.counter_value(name)

    def latency(self, name: str) -> LatencyRecorder:
        recorder = self._recorders.get(name)
        if recorder is None:
            recorder = LatencyRecorder(
                name, mirror=self.registry.histogram(f"latency.{name}"))
            self._recorders[name] = recorder
        return recorder

    def has_latency(self, name: str) -> bool:
        recorder = self._recorders.get(name)
        return recorder is not None and bool(recorder.samples)

    def latency_names(self) -> list[str]:
        return sorted(self._recorders)

    def snapshot(self) -> dict:
        """A plain-dict view used by benches when printing result tables."""
        result: dict = {"counters": dict(self.counters), "latencies": {}}
        for name, recorder in self._recorders.items():
            if recorder.samples:
                summary = recorder.summary()
                result["latencies"][name] = {
                    "count": summary.count,
                    "mean_ms": summary.mean_ms,
                    "p50_ms": summary.p50 * 1e3,
                    "p95_ms": summary.p95 * 1e3,
                    "p99_ms": summary.p99 * 1e3,
                    "stddev_ms": summary.stddev * 1e3,
                }
        return result
