"""Measurement plumbing: counters, gauges, and latency recorders.

Benchmarks observe the simulation exclusively through this module, so the
same recorders serve unit tests (exact assertions against calibrated
constants) and the benchmark harness (summary statistics for the tables in
EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class LatencySummary:
    """Summary statistics over a set of latency samples (seconds)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    @property
    def mean_us(self) -> float:
        return self.mean * 1e6


class LatencyRecorder:
    """Collects latency samples for one named operation."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[float] = []

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative latency sample for {self.name!r}: {seconds}")
        self.samples.append(seconds)

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.record(sample)

    def summary(self) -> LatencySummary:
        if not self.samples:
            raise ValueError(f"no samples recorded for {self.name!r}")
        ordered = sorted(self.samples)
        return LatencySummary(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
        )


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample list."""
    if not ordered:
        raise ValueError("empty sample list")
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class Metrics:
    """A bag of named counters and latency recorders shared by a simulation.

    Components increment counters (``metrics.incr("net.frames")``) and record
    latencies (``metrics.latency("open.remote").record(dt)``); benches read
    them back after the run.
    """

    counters: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    _recorders: dict[str, LatencyRecorder] = field(default_factory=dict)

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def latency(self, name: str) -> LatencyRecorder:
        recorder = self._recorders.get(name)
        if recorder is None:
            recorder = LatencyRecorder(name)
            self._recorders[name] = recorder
        return recorder

    def has_latency(self, name: str) -> bool:
        recorder = self._recorders.get(name)
        return recorder is not None and bool(recorder.samples)

    def latency_names(self) -> list[str]:
        return sorted(self._recorders)

    def snapshot(self) -> dict:
        """A plain-dict view used by benches when printing result tables."""
        result: dict = {"counters": dict(self.counters), "latencies": {}}
        for name, recorder in self._recorders.items():
            if recorder.samples:
                summary = recorder.summary()
                result["latencies"][name] = {
                    "count": summary.count,
                    "mean_ms": summary.mean_ms,
                    "p50_ms": summary.p50 * 1e3,
                    "p95_ms": summary.p95 * 1e3,
                }
        return result
