"""Deterministic discrete-event simulation substrate.

The V-System reproduction runs on a simulated cluster: hosts, kernels, and an
Ethernet are all driven by a single event queue with a simulated clock.  This
package provides that machinery:

- :mod:`repro.sim.engine` -- the event queue and clock.
- :mod:`repro.sim.process` -- generator-based cooperative tasks ("effects").
- :mod:`repro.sim.rng` -- seeded random number helpers for determinism.
- :mod:`repro.sim.metrics` -- counters, timers and latency recorders.
- :mod:`repro.sim.trace` -- an optional structured event trace.

All timing is in *simulated seconds*; nothing here depends on wall-clock time.
"""

from repro.sim.engine import Engine, ScheduledEvent
from repro.sim.metrics import LatencyRecorder, Metrics
from repro.sim.process import Task, TaskState
from repro.sim.rng import DeterministicRng
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Engine",
    "ScheduledEvent",
    "Task",
    "TaskState",
    "DeterministicRng",
    "Metrics",
    "LatencyRecorder",
    "Tracer",
    "TraceEvent",
]
