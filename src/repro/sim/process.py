"""Generator-based cooperative tasks.

V server and client code in this reproduction is written as Python generator
functions that ``yield`` *effect* objects -- ``Send``, ``Receive``, ``Delay``
and friends from :mod:`repro.kernel.ipc`.  The kernel interprets each effect,
applies its simulated cost, and resumes the generator with the result.

:class:`Task` wraps the generator and hides the resume/throw mechanics.  It is
deliberately ignorant of what the effects mean: the same task machinery drives
the discrete-event kernel and the asyncio transport, which is how server logic
is written once and executed on both substrates.

Composition uses plain ``yield from``: a helper that needs to block is itself
a generator, and callers delegate to it, so effects propagate to the top-level
interpreter without any framework glue.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

Effect = Any
ProcessBody = Generator[Effect, Any, Any]


class TaskState(enum.Enum):
    """Lifecycle of a task: created -> ready/blocked cycles -> done/failed."""

    CREATED = "created"
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class TaskFailure(RuntimeError):
    """Raised when a task body escapes with an exception."""

    def __init__(self, task_name: str, original: BaseException) -> None:
        super().__init__(f"task {task_name!r} failed: {original!r}")
        self.task_name = task_name
        self.original = original


class Task:
    """A resumable generator with an explicit lifecycle.

    The interpreter calls :meth:`start` once, then alternates between reading
    the yielded effect and calling :meth:`resume` (or :meth:`throw`) with the
    effect's result.  ``StopIteration`` marks completion; the return value of
    the generator is captured in :attr:`result`.
    """

    def __init__(self, body: ProcessBody, name: str = "task") -> None:
        if not hasattr(body, "send"):
            raise TypeError(
                f"task body must be a generator (got {type(body).__name__}); "
                "did you call the generator function?"
            )
        self.body = body
        self.name = name
        self.state = TaskState.CREATED
        self.result: Any = None
        self.failure: Optional[BaseException] = None

    @property
    def finished(self) -> bool:
        state = self.state
        return state is TaskState.DONE or state is TaskState.FAILED

    def start(self) -> tuple[bool, Effect]:
        """Run the body to its first yield.

        Returns ``(finished, effect_or_result)``.
        """
        if self.state is not TaskState.CREATED:
            raise RuntimeError(f"task {self.name!r} already started")
        return self._advance(self.body.send, None)

    def resume(self, value: Any = None) -> tuple[bool, Effect]:
        """Resume the body with the result of the last effect.

        This is the kernel's per-effect hot path, so the state guard and
        the advance are inlined rather than delegated (one resume per
        effect, tens of thousands per simulated second at fleet scale).
        """
        if self.state is not TaskState.BLOCKED:
            self._check_resumable()
        self.state = TaskState.READY
        try:
            effect = self.body.send(value)
        except StopIteration as stop:
            self.state = TaskState.DONE
            self.result = stop.value
            return True, stop.value
        except BaseException as exc:  # noqa: BLE001 - report, then re-raise wrapped
            self.state = TaskState.FAILED
            self.failure = exc
            raise TaskFailure(self.name, exc) from exc
        self.state = TaskState.BLOCKED
        return False, effect

    def throw(self, exc: BaseException) -> tuple[bool, Effect]:
        """Resume the body by raising ``exc`` at the suspended yield."""
        self._check_resumable()
        return self._advance(self.body.throw, exc)

    def close(self) -> None:
        """Abort the task (GeneratorExit inside the body)."""
        if not self.finished:
            self.body.close()
            self.state = TaskState.DONE

    def _check_resumable(self) -> None:
        if self.finished:
            raise RuntimeError(f"task {self.name!r} already finished")
        if self.state is TaskState.CREATED:
            raise RuntimeError(f"task {self.name!r} not started")

    def _advance(self, step, arg) -> tuple[bool, Effect]:
        self.state = TaskState.READY
        try:
            effect = step(arg)
        except StopIteration as stop:
            self.state = TaskState.DONE
            self.result = stop.value
            return True, stop.value
        except BaseException as exc:  # noqa: BLE001 - report, then re-raise wrapped
            self.state = TaskState.FAILED
            self.failure = exc
            raise TaskFailure(self.name, exc) from exc
        self.state = TaskState.BLOCKED
        return False, effect
