"""Seeded randomness for deterministic simulations.

Every source of randomness in the reproduction (pid allocation, workload
generation, fault injection) draws from a :class:`DeterministicRng` so that a
given seed reproduces a run exactly.  Sub-streams are derived by name, which
keeps components independent: adding a new consumer does not perturb the
sequences other components see.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A named hierarchy of seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._root = random.Random(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the sub-stream for ``name``, creating it on first use.

        The sub-seed mixes the root seed with a CRC of the name, so streams
        are stable across runs and independent of creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        sub_seed = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
        stream = random.Random(sub_seed)
        self._streams[name] = stream
        return stream

    def randint(self, name: str, low: int, high: int) -> int:
        return self.stream(name).randint(low, high)

    def choice(self, name: str, items: Sequence[T]) -> T:
        return self.stream(name).choice(items)

    def shuffle(self, name: str, items: list) -> None:
        self.stream(name).shuffle(items)

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def zipf_index(self, name: str, n: int, skew: float = 1.0) -> int:
        """Draw an index in ``[0, n)`` with Zipf(skew) popularity.

        Used by the workload generators to model the heavily skewed name
        popularity real file traffic exhibits.  Implemented by inverse CDF
        over the finite harmonic weights; O(n) setup is cached per (n, skew).
        """
        key = (name, n, skew)
        cdf = self._zipf_cdfs.get(key)
        if cdf is None:
            weights = [1.0 / (rank**skew) for rank in range(1, n + 1)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for weight in weights:
                acc += weight / total
                cdf.append(acc)
            self._zipf_cdfs[key] = cdf
        point = self.stream(name).random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        return lo

    _zipf_cdfs: dict = {}

    def __init_subclass__(cls, **kwargs) -> None:  # pragma: no cover - guard
        raise TypeError("DeterministicRng is not designed for subclassing")


def derive_seed(seed: int, *names: str) -> int:
    """Stand-alone helper to derive a stable sub-seed from a chain of names."""
    value = seed & 0xFFFFFFFF
    for name in names:
        value = (value * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
    return value
