"""Structured event tracing.

A :class:`Tracer` records (time, category, host, detail) tuples as the
simulation runs.  Tests use it to assert *sequences* of behaviour -- e.g. that
a CSname request was forwarded through exactly the servers the paper's name
mapping procedure prescribes -- and it doubles as a debugging aid
(``tracer.format()`` renders a readable timeline).

Tracing is off unless a tracer is installed, and the recording path is a
single append, so it does not distort simulated timing (which is explicit
anyway) or meaningfully slow real execution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    category: str
    subject: str
    detail: str

    def format(self) -> str:
        return f"{self.time * 1e3:10.3f}ms  {self.category:<12} {self.subject:<18} {self.detail}"


class Tracer:
    """An append-only event log with simple querying.

    ``limit`` bounds memory as a *ring buffer*: once full, recording a new
    event drops the oldest one (and counts it in ``dropped``).  A long run
    therefore always ends with the most recent -- usually most interesting --
    events, instead of a snapshot of the warm-up and silence thereafter.
    """

    def __init__(self, limit: int | None = None) -> None:
        self._events: deque[TraceEvent] = deque(maxlen=limit)
        self.limit = limit
        self.dropped = 0

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def record(self, time: float, category: str, subject: str, detail: str) -> None:
        if self.limit is not None and len(self._events) == self.limit:
            self.dropped += 1
        self._events.append(TraceEvent(time, category, subject, detail))

    def select(
        self,
        category: str | None = None,
        subject: str | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """Events matching all the given filters, in time order."""
        result = []
        for event in self.events:
            if category is not None and event.category != category:
                continue
            if subject is not None and event.subject != subject:
                continue
            if predicate is not None and not predicate(event):
                continue
            result.append(event)
        return result

    def categories(self) -> set[str]:
        return {event.category for event in self.events}

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def format(self, category: str | None = None) -> str:
        return "\n".join(event.format() for event in self.select(category=category))
