"""Discrete-event engine: a priority queue of callbacks and a simulated clock.

The engine is intentionally small.  Everything above it (kernels, networks,
servers) expresses behaviour as callbacks scheduled at simulated times.  Two
properties matter for the reproduction:

1. **Determinism.** Events scheduled for the same instant fire in scheduling
   order (a monotonically increasing sequence number breaks ties), so a given
   program produces the same trace on every run.
2. **Exactness.** The clock is a float number of simulated seconds; latency
   constants from :mod:`repro.net.latency` compose without noise, which lets
   tests assert the paper's measured numbers to sub-percent tolerances.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. scheduling in the past)."""


@dataclass(order=True)
class ScheduledEvent:
    """A single pending callback in the event queue."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: Set by the owning engine so it can keep an exact count of cancelled
    #: entries still sitting in the heap (and compact when they dominate).
    on_cancel: Optional[Callable[[], None]] = field(compare=False, default=None,
                                                    repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()


class Engine:
    """The simulated clock and event queue.

    Typical use::

        engine = Engine()
        engine.schedule(0.5, fire_timer)
        engine.run()            # runs until the queue drains
        assert engine.now == 0.5
    """

    #: Compaction never runs below this queue size: rebuilding a tiny heap
    #: costs more bookkeeping than the dead entries do.
    COMPACT_MIN_QUEUE = 64

    def __init__(self) -> None:
        self._queue: list[ScheduledEvent] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled_in_queue = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the queue.  O(1)."""
        return len(self._queue) - self._cancelled_in_queue

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted (introspection)."""
        return self._compactions

    def _note_cancelled(self) -> None:
        """An event in the heap was cancelled; compact when they dominate.

        Long fault-injection runs cancel large numbers of retransmission and
        probe timers; without compaction those dead entries sit in the heap
        until their (possibly far-future) fire time, bloating every push and
        pop.  Rebuilding the heap is O(live); amortized it is free because a
        rebuild is only triggered after at least as many cancellations.
        """
        self._cancelled_in_queue += 1
        if (len(self._queue) >= self.COMPACT_MIN_QUEUE
                and self._cancelled_in_queue * 2 > len(self._queue)):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0
            self._compactions += 1

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now ({self._now})"
            )
        event = ScheduledEvent(time=time, seq=self._seq, callback=callback,
                               args=args, on_cancel=self._note_cancelled)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.on_cancel = None
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in order until the queue drains.

        ``until`` stops the clock at that simulated time (events after it stay
        queued); ``max_events`` bounds the number of events fired, as a guard
        against accidental livelock in tests.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue).on_cancel = None
                    self._cancelled_in_queue -= 1
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    return
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
                self.step()
                fired += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Run until ``duration`` simulated seconds past the current time."""
        self.run(until=self._now + duration)
