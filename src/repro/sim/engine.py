"""Discrete-event engine: a priority queue of callbacks and a simulated clock.

The engine is intentionally small.  Everything above it (kernels, networks,
servers) expresses behaviour as callbacks scheduled at simulated times.  Two
properties matter for the reproduction:

1. **Determinism.** Events scheduled for the same instant fire in scheduling
   order (a monotonically increasing sequence number breaks ties), so a given
   program produces the same trace on every run.
2. **Exactness.** The clock is a float number of simulated seconds; latency
   constants from :mod:`repro.net.latency` compose without noise, which lets
   tests assert the paper's measured numbers to sub-percent tolerances.

Attribution profiling (:mod:`repro.obs.profile`) hooks in here: with one or
more profiler sinks attached, every scheduled event is stamped with the
attribution stack current at *schedule* time, and every clock advance is
charged to the stack of the event that advanced it.  Because the advances
partition the clock, the per-frame totals sum exactly to elapsed simulated
time -- and because the stamp is inherited while an event's callback runs,
transitively scheduled work (a reply frame, a retransmission timer) stays
attributed to the phase that caused it.  With no sink attached, none of
these branches run and no simulated behaviour changes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. scheduling in the past)."""


@dataclass(order=True)
class ScheduledEvent:
    """A single pending callback in the event queue."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    #: Set by the owning engine so it can keep an exact count of cancelled
    #: entries still sitting in the heap (and compact when they dominate).
    on_cancel: Optional[Callable[[], None]] = field(compare=False, default=None,
                                                    repr=False)
    #: Attribution stack captured at schedule time (profiling only; None
    #: when no profiler sink is attached).
    attribution: Optional[tuple] = field(compare=False, default=None,
                                         repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel()


class Engine:
    """The simulated clock and event queue.

    Typical use::

        engine = Engine()
        engine.schedule(0.5, fire_timer)
        engine.run()            # runs until the queue drains
        assert engine.now == 0.5
    """

    #: Compaction never runs below this queue size: rebuilding a tiny heap
    #: costs more bookkeeping than the dead entries do.
    COMPACT_MIN_QUEUE = 64

    #: Process-wide count of events fired across *all* engine instances.
    #: The bench runner reads it around each experiment to derive the
    #: wall-clock events/sec trajectory metric without holding references
    #: to the domains a benchmark builds internally.
    total_events: int = 0

    def __init__(self) -> None:
        self._queue: list[ScheduledEvent] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled_in_queue = 0
        self._compactions = 0
        #: Attached profiler sinks (see repro.obs.profile).  Duck-typed:
        #: each needs account(stack, dt) and count_message(stack, nbytes).
        self._profilers: list[Any] = []
        #: The current attribution stack: a tuple of frame labels naming what
        #: the simulation is doing *right now* (host -> process -> phase).
        self._attr_stack: tuple = ()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the queue.  O(1)."""
        return len(self._queue) - self._cancelled_in_queue

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted (introspection)."""
        return self._compactions

    # ------------------------------------------------------------- profiling

    @property
    def profiling(self) -> bool:
        """True when at least one profiler sink is attached.  Kernel code
        gates its frame pushes on this, so the unprofiled path costs one
        attribute read."""
        return bool(self._profilers)

    def attach_profiler(self, sink: Any) -> None:
        """Attach a profiler sink; it is charged every clock advance."""
        if sink not in self._profilers:
            self._profilers.append(sink)
            sink.attached(self)

    def detach_profiler(self, sink: Any) -> None:
        if sink in self._profilers:
            self._profilers.remove(sink)
            sink.detached(self)

    def profile_scope(self, frames: tuple) -> tuple:
        """Replace the attribution stack; returns the previous one.

        Used by the kernel when it switches to running a particular process:
        the scope *replaces* rather than extends, so interleaved processes
        never inherit each other's frames.
        """
        previous = self._attr_stack
        self._attr_stack = frames
        return previous

    def profile_restore(self, frames: tuple) -> None:
        self._attr_stack = frames

    def profile_push(self, label: str) -> None:
        """Push one frame label (no-op if it is already the innermost one,
        so self-rescheduling timers do not grow the stack)."""
        stack = self._attr_stack
        if not stack or stack[-1] != label:
            self._attr_stack = stack + (label,)

    def profile_pop(self, label: str) -> None:
        stack = self._attr_stack
        if stack and stack[-1] == label:
            self._attr_stack = stack[:-1]

    def profile_count_message(self, nbytes: int) -> None:
        """Charge one network message of ``nbytes`` to the current stack."""
        for sink in self._profilers:
            sink.count_message(self._attr_stack, nbytes)

    def _account(self, stack: Optional[tuple], dt: float) -> None:
        for sink in self._profilers:
            sink.account(stack or (), dt)

    def _note_cancelled(self) -> None:
        """An event in the heap was cancelled; compact when they dominate.

        Long fault-injection runs cancel large numbers of retransmission and
        probe timers; without compaction those dead entries sit in the heap
        until their (possibly far-future) fire time, bloating every push and
        pop.  Rebuilding the heap is O(live); amortized it is free because a
        rebuild is only triggered after at least as many cancellations.
        """
        self._cancelled_in_queue += 1
        if (len(self._queue) >= self.COMPACT_MIN_QUEUE
                and self._cancelled_in_queue * 2 > len(self._queue)):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0
            self._compactions += 1

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now ({self._now})"
            )
        event = ScheduledEvent(time=time, seq=self._seq, callback=callback,
                               args=args, on_cancel=self._note_cancelled)
        if self._profilers:
            event.attribution = self._attr_stack
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.on_cancel = None
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            if self._profilers:
                # Clock advances partition elapsed time: charging each to
                # the stack of the event that caused it makes the per-frame
                # totals sum exactly to end-to-end simulated time.  The
                # event's stamp becomes the current stack while its callback
                # runs, so transitively scheduled events inherit attribution.
                self._account(event.attribution, event.time - self._now)
                self._now = event.time
                self._events_processed += 1
                Engine.total_events += 1
                previous = self._attr_stack
                self._attr_stack = event.attribution or ()
                try:
                    event.callback(*event.args)
                finally:
                    self._attr_stack = previous
                return True
            self._now = event.time
            self._events_processed += 1
            Engine.total_events += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in order until the queue drains.

        ``until`` stops the clock at that simulated time (events after it stay
        queued); ``max_events`` bounds the number of events fired, as a guard
        against accidental livelock in tests.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue).on_cancel = None
                    self._cancelled_in_queue -= 1
                    continue
                if until is not None and head.time > until:
                    if self._profilers:
                        self._account(("idle",), until - self._now)
                    self._now = until
                    return
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
                self.step()
                fired += 1
            if until is not None and self._now < until:
                if self._profilers:
                    self._account(("idle",), until - self._now)
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Run until ``duration`` simulated seconds past the current time."""
        self.run(until=self._now + duration)
