"""Discrete-event engine: a priority queue of callbacks and a simulated clock.

The engine is intentionally small.  Everything above it (kernels, networks,
servers) expresses behaviour as callbacks scheduled at simulated times.  Two
properties matter for the reproduction:

1. **Determinism.** Events scheduled for the same instant fire in scheduling
   order (a monotonically increasing sequence number breaks ties), so a given
   program produces the same trace on every run.
2. **Exactness.** The clock is a float number of simulated seconds; latency
   constants from :mod:`repro.net.latency` compose without noise, which lets
   tests assert the paper's measured numbers to sub-percent tolerances.

Hot-path layout (the ROADMAP's >= 10^6 events/sec target):

- Heap entries are plain ``(time, seq, callback, args, event)`` tuples, so
  every sift comparison is a C-level tuple compare; ``seq`` is unique, so
  nothing past it is ever compared.  The trailing ``event`` slot is a
  :class:`ScheduledEvent` -- a ``__slots__`` flyweight carrying only
  cancellation state and the profiler's attribution stamp -- for entries
  the caller may cancel, and ``None`` for fire-and-forget work posted via
  :meth:`Engine.post` / :meth:`Engine.post_at`, which skips the event
  allocation entirely.  Kernel frame hops (transmit, deliver, handle) are
  all posts, so the dominant event traffic allocates one tuple and nothing
  else.
- ``step``/``run``/``schedule*`` come in two complete variants.  The class
  methods *are* the fast path and contain no profiler branch at all.  When
  the first profiler sink attaches, :meth:`attach_profiler` performs a
  one-time dispatch swap -- instance attributes shadowing the class methods
  with the instrumented variants -- and detaching the last sink removes
  them.  The cost of profiling support on an unprofiled engine is therefore
  zero per event, not one branch per event.
- :meth:`schedule_many` batches same-tick bursts (a kernel fanning a group
  send out to local members) behind one heap push: the batch consumes one
  sequence number per callback, so firing order is *identical* to the
  equivalent loop of :meth:`schedule` calls, but the heap sees a single
  wrapper entry.

Attribution profiling (:mod:`repro.obs.profile`) hooks into the
instrumented variants: every scheduled event is stamped with the
attribution stack current at *schedule* time, and every clock advance is
charged to the stack of the event that advanced it.  Because the advances
partition the clock, the per-frame totals sum exactly to elapsed simulated
time -- and because the stamp is inherited while an event's callback runs,
transitively scheduled work (a reply frame, a retransmission timer) stays
attributed to the phase that caused it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. scheduling in the past)."""


class ScheduledEvent:
    """A single pending callback in the event queue.

    A ``__slots__`` flyweight: ordering lives in the ``(time, seq)`` tuple
    of the heap entry, not on the object, so instances carry no comparison
    methods and creation is one attribute burst.  ``attribution`` is the
    stack captured at schedule time (instrumented scheduling only; None on
    the fast path).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "on_cancel", "attribution")

    def __init__(self, time: float, seq: int, callback: Callable[..., None],
                 args: tuple = (),
                 on_cancel: Optional[Callable[[], None]] = None,
                 attribution: Optional[tuple] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Set by the owning engine so it can keep an exact count of
        #: cancelled entries still sitting in the heap (and compact when
        #: they dominate); cleared when the event fires.
        self.on_cancel = on_cancel
        self.attribution = attribution

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        on_cancel = self.on_cancel
        if on_cancel is not None:
            on_cancel()

    def __repr__(self) -> str:
        return (f"ScheduledEvent(time={self.time}, seq={self.seq}, "
                f"callback={self.callback!r}, cancelled={self.cancelled})")


class _Batch:
    """Shared state of one :meth:`Engine.schedule_many` call."""

    __slots__ = ("engine", "wrapper", "live", "started")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.wrapper: Optional[ScheduledEvent] = None
        self.live = 0
        self.started = False

    def entry_cancelled(self) -> None:
        self.live -= 1
        if self.started:
            # The wrapper already fired; per-entry accounting was settled
            # when the batch started running.
            return
        if self.live == 0:
            # Nothing left to fire: the wrapper itself becomes a dead heap
            # entry (counted, compactable) -- exactly like the last of N
            # individually scheduled events being cancelled.
            self.wrapper.cancel()
        else:
            self.engine._batch_extra -= 1


class _BatchEntry:
    """One cancellable callback inside a :meth:`Engine.schedule_many` batch.

    Supports the same ``cancel()`` / ``cancelled`` surface as
    :class:`ScheduledEvent`, so callers can hold either interchangeably.
    """

    __slots__ = ("callback", "args", "batch", "_state")

    _PENDING, _CANCELLED, _FIRED = 0, 1, 2

    def __init__(self, callback: Callable[..., None], args: tuple,
                 batch: _Batch) -> None:
        self.callback = callback
        self.args = args
        self.batch = batch
        self._state = 0

    @property
    def cancelled(self) -> bool:
        return self._state == self._CANCELLED

    def cancel(self) -> None:
        if self._state != self._PENDING:
            return
        self._state = self._CANCELLED
        self.batch.entry_cancelled()


class Engine:
    """The simulated clock and event queue.

    Typical use::

        engine = Engine()
        engine.schedule(0.5, fire_timer)
        engine.run()            # runs until the queue drains
        assert engine.now == 0.5
    """

    #: Hot engine state lives in slots (``_now`` is stored on every event
    #: fired, ``_seq``/``_queue`` are read on every schedule/post).  The
    #: trailing ``__dict__`` keeps the instance open for the profiler's
    #: dispatch-swap shadows (and the ``profiling`` flag, which must stay a
    #: class attribute so it cannot be listed here).
    __slots__ = ("_queue", "_seq", "_now", "_running", "_events_processed",
                 "_cancelled_in_queue", "_batch_extra", "_on_cancel",
                 "_compactions", "_profilers", "_attr_stack", "_attr_dups",
                 "_recorder", "_fire_seq", "__dict__", "__weakref__")

    #: Compaction never runs below this queue size: rebuilding a tiny heap
    #: costs more bookkeeping than the dead entries do.
    COMPACT_MIN_QUEUE = 64

    #: Process-wide count of events fired across *all* engine instances.
    #: The bench runner reads it around each experiment to derive the
    #: wall-clock events/sec trajectory metric without holding references
    #: to the domains a benchmark builds internally.  Python integers do
    #: not overflow, so the count is safe at any fleet scale; reset it
    #: between measurement windows with :meth:`reset_total_events` rather
    #: than assigning the class attribute directly.
    total_events: int = 0

    @classmethod
    def reset_total_events(cls) -> None:
        """Zero the process-wide event counter (documented reset point).

        Benchmarks that want a fresh measurement window call this instead
        of writing ``Engine.total_events`` -- assigning through an
        *instance* would silently shadow the class counter and split the
        tally.
        """
        cls.total_events = 0

    def __init__(self) -> None:
        #: Min-heap of (time, seq, callback, args, event-or-None) tuples.
        self._queue: list[tuple] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled_in_queue = 0
        #: Live batch entries beyond the one heap slot their wrapper holds
        #: (see schedule_many): ``pending`` adds this to the queue count.
        self._batch_extra = 0
        #: The bound cancellation hook, created once -- schedule() runs per
        #: event, and rebuilding the bound method there is measurable.
        self._on_cancel = self._note_cancelled
        self._compactions = 0
        #: Attached profiler sinks (see repro.obs.profile).  Duck-typed:
        #: each needs account(stack, dt) and count_message(stack, nbytes).
        self._profilers: list[Any] = []
        #: The current attribution stack: a tuple of frame labels naming what
        #: the simulation is doing *right now* (host -> process -> phase).
        self._attr_stack: tuple = ()
        #: Parallel per-frame duplicate counts: profile_push deduplicates a
        #: label equal to the innermost frame, and this records how many
        #: such no-op pushes are outstanding so profile_pop stays
        #: depth-balanced (popping a deduplicated label must not remove the
        #: frame somebody else pushed).
        self._attr_dups: tuple = ()
        #: Attached flight recorder (see repro.obs.flight), or None.  The
        #: engine never calls it per event; it only maintains _fire_seq so
        #: kernel record sites can stamp flight records with the sequence
        #: number of the event whose callback is currently running.
        self._recorder: Any = None
        #: Sequence number of the event currently firing (-1 outside a
        #: callback, or while no recorder/profiler variant is installed).
        self._fire_seq = -1

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events that have fired so far.

        Exact between runs; during :meth:`run` the fast path accumulates
        into a local and flushes on exit, so mid-run reads (only possible
        from inside a callback) may lag the true count.
        """
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the queue.  O(1)."""
        return len(self._queue) - self._cancelled_in_queue + self._batch_extra

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted (introspection)."""
        return self._compactions

    # ------------------------------------------------------------- profiling

    #: True while at least one profiler sink is attached.  Kernel code gates
    #: its frame pushes on this; it is a plain attribute (maintained by
    #: attach/detach, shadowing this class default) rather than a property,
    #: because the kernel reads it several times per frame hop and a
    #: property call there is measurable at fleet scale.
    profiling: bool = False

    #: Methods swapped to their instrumented variants while any profiler is
    #: attached.  The class-level definitions are the fast path; the swap
    #: sets instance attributes that shadow them, and detaching the last
    #: sink deletes the shadows -- a one-time dispatch change instead of a
    #: per-event branch.
    _SWAPPED = ("step", "run", "schedule", "schedule_at", "schedule_many",
                "post", "post_at")

    #: True while a flight recorder is attached (see repro.obs.flight).
    #: Same shadowing discipline as ``profiling``: a class default the
    #: dispatch swap overrides with an instance attribute, so the kernel's
    #: gate reads cost one dict lookup and no property call.
    recording: bool = False

    def _refresh_dispatch(self) -> None:
        """Install the method set matching the attached instrumentation.

        One-time dispatch swap instead of per-event branches: any profiler
        wins (its instrumented variants also maintain ``_fire_seq``, so a
        recorder rides along); a recorder alone installs only the recording
        step/run pair (scheduling stays on the fast path); with neither, the
        shadows are removed and the class methods -- the fast path -- serve.
        """
        for name in self._SWAPPED:
            self.__dict__.pop(name, None)
        if self._profilers:
            self.step = self._step_instrumented
            self.run = self._run_instrumented
            self.schedule = self._schedule_instrumented
            self.schedule_at = self._schedule_at_instrumented
            self.schedule_many = self._schedule_many_instrumented
            self.post = self._post_instrumented
            self.post_at = self._post_at_instrumented
        elif self._recorder is not None:
            self.step = self._step_recording
            self.run = self._run_recording

    def attach_profiler(self, sink: Any) -> None:
        """Attach a profiler sink; it is charged every clock advance."""
        if sink not in self._profilers:
            self._profilers.append(sink)
            self.profiling = True
            sink.attached(self)
            if len(self._profilers) == 1:
                self._refresh_dispatch()

    def detach_profiler(self, sink: Any) -> None:
        if sink in self._profilers:
            self._profilers.remove(sink)
            sink.detached(self)
            if not self._profilers:
                self.__dict__.pop("profiling", None)
                self._refresh_dispatch()

    def attach_recorder(self, sink: Any) -> None:
        """Attach the flight recorder; only one may be attached at a time.

        The engine itself only maintains ``_fire_seq`` (the sequence number
        of the event currently firing); the kernel's record sites read it to
        stamp flight records.  Cost when unattached: zero -- the recording
        step/run variants exist only as instance shadows while attached.
        """
        if self._recorder is sink:
            return
        if self._recorder is not None:
            raise SimulationError("a flight recorder is already attached")
        self._recorder = sink
        self.recording = True
        self._refresh_dispatch()

    def detach_recorder(self, sink: Any) -> None:
        if self._recorder is sink:
            self._recorder = None
            self.__dict__.pop("recording", None)
            self._fire_seq = -1
            self._refresh_dispatch()

    def profile_scope(self, frames: tuple) -> tuple:
        """Replace the attribution stack; returns an opaque restore token.

        Used by the kernel when it switches to running a particular process:
        the scope *replaces* rather than extends, so interleaved processes
        never inherit each other's frames.  Pass the returned token back to
        :meth:`profile_restore`; it carries both the previous stack and its
        duplicate-push counts, so push/pop balance survives the swap.
        """
        token = (self._attr_stack, self._attr_dups)
        self._attr_stack = frames
        self._attr_dups = (0,) * len(frames)
        return token

    def profile_restore(self, token: tuple) -> None:
        self._attr_stack, self._attr_dups = token

    def profile_push(self, label: str) -> None:
        """Push one frame label (deduplicated if it is already the innermost
        one, so self-rescheduling timers do not grow the stack).

        Deduplicated pushes are *counted*: the matching :meth:`profile_pop`
        consumes the count instead of removing the frame someone else
        pushed, so push/pop always balances."""
        stack = self._attr_stack
        if stack and stack[-1] == label:
            dups = self._attr_dups
            self._attr_dups = dups[:-1] + (dups[-1] + 1,)
        else:
            self._attr_stack = stack + (label,)
            self._attr_dups = self._attr_dups + (0,)

    def profile_pop(self, label: str) -> None:
        stack = self._attr_stack
        if stack and stack[-1] == label:
            dups = self._attr_dups
            if dups and dups[-1] > 0:
                self._attr_dups = dups[:-1] + (dups[-1] - 1,)
            else:
                self._attr_stack = stack[:-1]
                self._attr_dups = dups[:-1]

    def profile_count_message(self, nbytes: int) -> None:
        """Charge one network message of ``nbytes`` to the current stack."""
        for sink in self._profilers:
            sink.count_message(self._attr_stack, nbytes)

    def _account(self, stack: Optional[tuple], dt: float) -> None:
        for sink in self._profilers:
            sink.account(stack or (), dt)

    # ----------------------------------------------------------- compaction

    def _note_cancelled(self) -> None:
        """An event in the heap was cancelled; compact when they dominate.

        Long fault-injection runs cancel large numbers of retransmission and
        probe timers; without compaction those dead entries sit in the heap
        until their (possibly far-future) fire time, bloating every push and
        pop.  Rebuilding the heap is O(live); amortized it is free because a
        rebuild is only triggered after at least as many cancellations.
        """
        self._cancelled_in_queue += 1
        queue = self._queue
        if (len(queue) >= self.COMPACT_MIN_QUEUE
                and self._cancelled_in_queue * 2 > len(queue)):
            # In place: run() holds a local alias to the heap list, so the
            # rebuild must preserve list identity, not rebind the attribute.
            # Posted (fire-and-forget) entries carry None in the event slot
            # and are never cancelled.
            queue[:] = [entry for entry in queue
                        if entry[4] is None or not entry[4].cancelled]
            heapq.heapify(queue)
            self._cancelled_in_queue = 0
            self._compactions += 1

    # ------------------------------------------------- scheduling (fast path)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, seq, callback, args, self._on_cancel)
        _heappush(self._queue, (time, seq, callback, args, event))
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to fire at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now ({self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, seq, callback, args, self._on_cancel)
        _heappush(self._queue, (time, seq, callback, args, event))
        return event

    def post(self, delay: float, callback: Callable[..., None],
             *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellation handle.

        Identical firing semantics (consumes one sequence number, fires in
        the same order a ``schedule`` call here would), but the heap entry
        carries ``None`` in the event slot, so no :class:`ScheduledEvent`
        is allocated.  This is the right call for the kernel's frame-hop
        events -- transmit, deliver, handle-packet -- which are never
        cancelled and dominate event traffic at fleet scale.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._queue, (self._now + delay, seq, callback, args, None))

    def post_at(self, time: float, callback: Callable[..., None],
                *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at` (see :meth:`post`)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now ({self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._queue, (time, seq, callback, args, None))

    def schedule_many(self, delay: float, calls) -> list:
        """Batch-schedule ``calls`` (an iterable of ``(callback, args)``
        pairs) all at ``delay`` seconds from now, behind one heap push.

        Exactly equivalent to ``[self.schedule(delay, cb, *args) for cb,
        args in calls]`` -- the batch consumes one sequence number per
        callback and fires them in list order at the same instant, so
        relative order against every other event is identical -- but the
        heap carries a single wrapper entry, which is what makes kernel
        fan-out (group sends, burst deliveries) O(1) amortized in heap
        operations.  Returns one cancellable handle per callback.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        calls = list(calls)
        count = len(calls)
        if count == 0:
            return []
        time = self._now + delay
        if count == 1:
            callback, args = calls[0]
            return [self.schedule_at(time, callback, *args)]
        batch = _Batch(self)
        entries = [_BatchEntry(callback, args, batch)
                   for callback, args in calls]
        seq = self._seq
        self._seq = seq + count
        wrapper = ScheduledEvent(time, seq, self._run_batch,
                                 (batch, entries), self._on_cancel)
        batch.wrapper = wrapper
        batch.live = count
        _heappush(self._queue,
                  (time, seq, self._run_batch, (batch, entries), wrapper))
        self._batch_extra += count - 1
        return entries

    def _run_batch(self, batch: _Batch, entries: list) -> None:
        """Fire a schedule_many batch: the wrapper event's callback."""
        batch.started = True
        # The wrapper's own heap slot was accounted as one pending event and
        # one fired event; settle the remainder for the live entries.
        self._batch_extra -= batch.live - 1
        fired = 0
        for entry in entries:
            if entry._state == 0:  # pending (not cancelled, even mid-batch)
                entry._state = 2
                fired += 1
                entry.callback(*entry.args)
        extra = fired - 1
        if extra:
            self._events_processed += extra
            Engine.total_events += extra

    # -------------------------------------------------- event loop (fast path)

    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            time, __, callback, args, event = _heappop(queue)
            if event is not None:
                if event.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                event.on_cancel = None
            self._now = time
            self._events_processed += 1
            Engine.total_events += 1
            callback(*args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in order until the queue drains.

        ``until`` stops the clock at that simulated time (events after it stay
        queued); ``max_events`` bounds the number of events fired, as a guard
        against accidental livelock in tests.  Dead (cancelled) heads are
        drained before the ``until`` check, so ``pending`` never counts
        events an immediate re-run would silently discard.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        queue = self._queue
        pop = _heappop
        limit = float("inf") if max_events is None else max_events
        fired = 0
        try:
            if until is None:
                while queue:
                    if fired >= limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; possible livelock"
                        )
                    time, __, callback, args, event = pop(queue)
                    if event is not None:
                        if event.cancelled:
                            self._cancelled_in_queue -= 1
                            continue
                        event.on_cancel = None
                    self._now = time
                    fired += 1
                    callback(*args)
                return
            while queue:
                entry = queue[0]
                event = entry[4]
                if event is not None and event.cancelled:
                    pop(queue)
                    self._cancelled_in_queue -= 1
                    continue
                if entry[0] > until:
                    self._now = until
                    return
                if fired >= limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
                pop(queue)
                if event is not None:
                    event.on_cancel = None
                self._now = entry[0]
                fired += 1
                entry[2](*entry[3])
            if self._now < until:
                self._now = until
        finally:
            self._running = False
            if fired:
                self._events_processed += fired
                Engine.total_events += fired

    def run_for(self, duration: float) -> None:
        """Run until ``duration`` simulated seconds past the current time."""
        self.run(until=self._now + duration)

    # --------------------------------------------- instrumented event loop
    #
    # Complete second implementations of the swapped methods, installed as
    # instance attributes while a profiler sink is attached (see
    # attach_profiler).  Behaviour is identical to the fast path except for
    # the attribution bookkeeping: events are stamped with the stack at
    # schedule time, every clock advance is charged to the stack of the
    # event that caused it, and the stamp becomes the current stack while
    # the callback runs so transitively scheduled work inherits it.

    def _schedule_instrumented(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._schedule_at_instrumented(self._now + delay,
                                              callback, *args)

    def _schedule_at_instrumented(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledEvent:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now ({self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, seq, callback, args, self._on_cancel,
                               attribution=self._attr_stack)
        _heappush(self._queue, (time, seq, callback, args, event))
        return event

    def _post_instrumented(self, delay: float, callback: Callable[..., None],
                           *args: Any) -> None:
        # Posted events must still carry an attribution stamp under
        # profiling, so the instrumented post allocates a real event.  The
        # handle is simply not returned -- post's contract.
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._schedule_at_instrumented(self._now + delay, callback, *args)

    def _post_at_instrumented(self, time: float,
                              callback: Callable[..., None],
                              *args: Any) -> None:
        self._schedule_at_instrumented(time, callback, *args)

    def _schedule_many_instrumented(self, delay: float, calls) -> list:
        # Per-event scheduling under profiling: each callback gets its own
        # stamped heap entry, so attribution is indistinguishable from a
        # loop of schedule() calls.  Sequence consumption (one per callback)
        # matches the fast path, so simulated-time results are identical
        # whether or not a profiler is attached.
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        return [self._schedule_at_instrumented(time, callback, *args)
                for callback, args in calls]

    def _step_instrumented(self) -> bool:
        queue = self._queue
        while queue:
            time, seq, callback, args, event = _heappop(queue)
            # An event slot of None means the entry was posted before the
            # profiler attached; it carries no stamp and is never cancelled.
            if event is not None:
                if event.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                event.on_cancel = None
                attribution = event.attribution
            else:
                attribution = None
            self._fire_seq = seq
            # Clock advances partition elapsed time: charging each to the
            # stack of the event that caused it makes the per-frame totals
            # sum exactly to end-to-end simulated time.  The event's stamp
            # becomes the current stack while its callback runs, so
            # transitively scheduled events inherit attribution.
            self._account(attribution, time - self._now)
            self._now = time
            self._events_processed += 1
            Engine.total_events += 1
            previous_stack = self._attr_stack
            previous_dups = self._attr_dups
            attribution = attribution or ()
            self._attr_stack = attribution
            self._attr_dups = (0,) * len(attribution)
            try:
                callback(*args)
            finally:
                self._attr_stack = previous_stack
                self._attr_dups = previous_dups
            return True
        return False

    def _run_instrumented(self, until: float | None = None,
                          max_events: int | None = None) -> None:
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        queue = self._queue
        fired = 0
        try:
            while queue:
                entry = queue[0]
                event = entry[4]
                if event is not None and event.cancelled:
                    _heappop(queue)
                    self._cancelled_in_queue -= 1
                    continue
                if until is not None and entry[0] > until:
                    self._account(("idle",), until - self._now)
                    self._now = until
                    return
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
                self._step_instrumented()
                fired += 1
            if until is not None and self._now < until:
                self._account(("idle",), until - self._now)
                self._now = until
        finally:
            self._running = False

    # ----------------------------------------------- recording event loop
    #
    # Installed by attach_recorder when a flight recorder (and no profiler)
    # is attached.  Byte-for-byte the fast path plus one store: the firing
    # event's sequence number lands in _fire_seq before the callback runs,
    # so kernel record sites can stamp flight records with it.  Scheduling
    # methods are NOT swapped -- the recorder costs nothing at schedule
    # time -- and run() additionally calls recorder.flush() every
    # _FLUSH_EVERY events, which is where lane tails get sealed into
    # digest windows (amortized off the record path; seals consume whole
    # windows, so flush cadence never shows in the chains).  Together
    # that is what keeps the recorder inside the E15/E17 observer-effect
    # budget.

    #: Events between recorder flushes (the check is one int compare per
    #: event).  Bounds unsealed-tail growth at a few thousand records --
    #: the same order as the default ring capacity.
    _FLUSH_EVERY = 2048

    def _step_recording(self) -> bool:
        queue = self._queue
        while queue:
            time, seq, callback, args, event = _heappop(queue)
            if event is not None:
                if event.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                event.on_cancel = None
            self._now = time
            self._fire_seq = seq
            self._events_processed += 1
            Engine.total_events += 1
            callback(*args)
            return True
        return False

    def _run_recording(self, until: float | None = None,
                       max_events: int | None = None) -> None:
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        queue = self._queue
        pop = _heappop
        limit = float("inf") if max_events is None else max_events
        flush = self._recorder.flush
        flush_step = self._FLUSH_EVERY
        next_flush = flush_step
        fired = 0
        try:
            if until is None:
                while queue:
                    if fired >= limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; possible livelock"
                        )
                    time, seq, callback, args, event = pop(queue)
                    if event is not None:
                        if event.cancelled:
                            self._cancelled_in_queue -= 1
                            continue
                        event.on_cancel = None
                    self._now = time
                    self._fire_seq = seq
                    fired += 1
                    if fired == next_flush:
                        next_flush += flush_step
                        flush()
                    callback(*args)
                return
            while queue:
                entry = queue[0]
                event = entry[4]
                if event is not None and event.cancelled:
                    pop(queue)
                    self._cancelled_in_queue -= 1
                    continue
                if entry[0] > until:
                    self._now = until
                    return
                if fired >= limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
                pop(queue)
                if event is not None:
                    event.on_cancel = None
                self._now = entry[0]
                self._fire_seq = entry[1]
                fired += 1
                if fired == next_flush:
                    next_flush += flush_step
                    flush()
                entry[2](*entry[3])
            if self._now < until:
                self._now = until
        finally:
            self._running = False
            if fired:
                self._events_processed += fired
                Engine.total_events += fired
