"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses this via the legacy develop path when PEP 660
editable-wheel builds are unavailable offline.
"""
from setuptools import setup

setup()
